// Figure 7a: Apache throughput for different content sizes, LibreSSL vs
// LibSEAL (without auditing) -- the pure cost of in-enclave TLS.
//
// Non-persistent connections: a fresh TLS handshake per request, which is
// the worst case. Paper result: 23-25%% overhead for small content (the
// handshake dominates and pays the enclave costs), amortising to ~1%% at
// 100 MB where the network/cipher path dominates (8.7 Gbps).
//
// Content sizes are capped at 4 MB here: our from-scratch AES/GHASH run at
// software speed on one core, so the large-transfer regime (overhead -> 0)
// is reached earlier; the SHAPE (monotonically vanishing overhead) is the
// reproduced result.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/services/http_server.h"
#include "src/services/static_content.h"

namespace seal::bench {
namespace {

struct Series {
  std::vector<size_t> sizes;
  std::vector<double> rps;
};

// `resumption_percent` > 0 lets that share of the non-persistent
// connections offer their remembered TLS session, so the per-request
// handshake runs abbreviated (no certificate flight, no ECDHE) when the
// server still caches it.
Series RunVariant(bool libseal, int resumption_percent = 0) {
  net::Network network;
  std::unique_ptr<core::LibSealRuntime> runtime;
  std::unique_ptr<services::ServerTransport> transport;
  tls::TlsConfig server_tls = ServerTls();
  if (!libseal) {
    transport = std::make_unique<services::PlainTransport>(server_tls);
  } else {
    runtime = std::make_unique<core::LibSealRuntime>(
        LibSealBenchOptions(Variant::kLibSealProcess, ""), nullptr);
    if (!runtime->Init().ok()) {
      return {};
    }
    transport = std::make_unique<services::LibSealTransport>(runtime.get());
  }
  services::HttpServer server(&network, {.address = "web:443"}, &*transport,
                              services::ServeStaticContent);
  if (!server.Start().ok()) {
    return {};
  }

  // The paper's load generators run on separate machines, so client-side
  // crypto is free; on this single shared core we at least skip the
  // client's certificate verification to keep the measured bottleneck on
  // the server side.
  tls::TlsConfig client_tls = ClientTls();
  client_tls.verify_peer = false;
  services::ClientSessionStore sessions;
  Series series;
  std::string label = libseal ? "Apache-LibSEAL" : "Apache-LibreSSL";
  if (resumption_percent > 0) {
    label += "+resume" + std::to_string(resumption_percent) + "%";
  }
  std::printf("%-26s %10s %10s %12s\n", label.c_str(), "content", "req/s", "goodput MB/s");
  for (size_t size : {size_t{0}, size_t{1} << 10, size_t{10} << 10, size_t{64} << 10,
                      size_t{512} << 10, size_t{1} << 20, size_t{4} << 20}) {
    LoadOptions load;
    load.clients = 2;
    load.seconds = 2.0;
    load.keep_alive = false;  // non-persistent: handshake per request
    // Model the testbed's network: fast enough to be irrelevant for small
    // content, the bottleneck for bulk transfers (scaled to this host's
    // software-crypto throughput the way 10 Gbps related to the paper's
    // hardware-crypto throughput).
    load.link_bandwidth_bytes_per_sec = 15ll * 1000 * 1000;
    if (resumption_percent > 0) {
      load.session_store = &sessions;
      load.resumption_percent = resumption_percent;
    }
    LoadResult result = RunClosedLoop(
        &network, "web:443", client_tls,
        [size](int, uint64_t) { return services::MakeContentRequest(size); }, load);
    series.sizes.push_back(size);
    series.rps.push_back(result.throughput_rps);
    std::printf("%-26s %9zuB %10.0f %12.1f\n", "", size, result.throughput_rps,
                result.throughput_rps * static_cast<double>(size) / 1e6);
  }
  server.Stop();
  if (runtime != nullptr) {
    runtime->Shutdown();
  }
  return series;
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  std::printf("=== Figure 7a: Apache throughput vs content size (TLS only, no auditing) ===\n");
  Series native = RunVariant(false);
  Series libseal = RunVariant(true);
  // Resumption axis: the same non-persistent load, but 90% of connections
  // re-offer their TLS session and take the abbreviated handshake.
  Series resumed = RunVariant(true, 90);
  std::printf("\n%-10s %12s %12s %10s %14s %10s\n", "content", "LibreSSL", "LibSEAL", "overhead",
              "LibSEAL+res90", "res gain");
  for (size_t i = 0; i < native.sizes.size() && i < libseal.rps.size() && i < resumed.rps.size();
       ++i) {
    double overhead = 100.0 * (1.0 - libseal.rps[i] / native.rps[i]);
    double gain = 100.0 * (resumed.rps[i] / libseal.rps[i] - 1.0);
    std::printf("%9zuB %12.0f %12.0f %9.1f%% %14.0f %+9.1f%%\n", native.sizes[i], native.rps[i],
                libseal.rps[i], overhead, resumed.rps[i], gain);
  }
  std::printf("\npaper: 23-25%% overhead at 0B-10KB, 18%% at 64KB, shrinking to 1%% at 100MB\n");
  std::printf("resumption gain is largest where the handshake dominates (small content)\n");
  return 0;
}
