// Figure 7c: multi-core scalability of Apache and Squid with LibreSSL and
// LibSEAL, 1 KB content.
//
// Paper result: throughput grows linearly from 1 to 4 cores for all four
// configurations (the paper could not test beyond 4 cores for lack of
// larger SGX parts).
//
// IMPORTANT CAVEAT: this reproduction host has a single CPU core (see
// EXPERIMENTS.md), so true parallel speedup cannot occur. We sweep the
// offered concurrency the way the paper sweeps cores and report the
// series; on a multi-core host the same binary shows the paper's linear
// growth because every layer (server threads, enclave workers, clients)
// is fully multi-threaded.
#include <cstdio>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "src/services/http_server.h"
#include "src/services/static_content.h"

namespace seal::bench {
namespace {

void RunVariant(const char* label, bool libseal) {
  net::Network network;
  std::unique_ptr<core::LibSealRuntime> runtime;
  std::unique_ptr<services::ServerTransport> transport;
  tls::TlsConfig server_tls = ServerTls();
  if (!libseal) {
    transport = std::make_unique<services::PlainTransport>(server_tls);
  } else {
    runtime = std::make_unique<core::LibSealRuntime>(
        LibSealBenchOptions(Variant::kLibSealProcess, ""), nullptr);
    if (!runtime->Init().ok()) {
      return;
    }
    transport = std::make_unique<services::LibSealTransport>(runtime.get());
  }
  services::HttpServer server(&network, {.address = "web:443"}, transport.get(),
                              services::ServeStaticContent);
  if (!server.Start().ok()) {
    return;
  }
  tls::TlsConfig client_tls = ClientTls();
  std::printf("%-16s", label);
  for (int cores = 1; cores <= 4; ++cores) {
    LoadOptions load;
    load.clients = cores;  // offered parallelism tracks the core count
    load.seconds = 1.0;
    load.keep_alive = true;
    LoadResult result = RunClosedLoop(
        &network, "web:443", client_tls,
        [](int, uint64_t) { return services::MakeContentRequest(1024, true); }, load);
    std::printf(" %10.0f", result.throughput_rps);
  }
  std::printf("\n");
  server.Stop();
  if (runtime != nullptr) {
    runtime->Shutdown();
  }
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  std::printf("=== Figure 7c: scalability with offered parallelism (1 KB content) ===\n");
  std::printf("host hardware concurrency: %u core(s)\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-16s %10s %10s %10s %10s\n", "config", "1", "2", "3", "4");
  RunVariant("Apache-LibreSSL", false);
  RunVariant("Apache-LibSEAL", true);
  std::printf("\npaper: linear scaling 1-4 cores for Apache and Squid, both TLS stacks;\n"
              "on a single-core host the series plateaus (no parallelism available)\n");
  return 0;
}
