// Multi-enclave sharding scaling (ROADMAP item 2): aggregate OnPair
// throughput at 1/2/4/8 shards, plus per-run epoch-anchor and cross-shard
// check costs, and an equivalence phase asserting the sharded deployment
// finds EXACTLY the violations a single instance (and the offline
// log_merge path) finds. Emits BENCH_sharding.json; --quick shrinks counts
// for the CI smoke step.
//
// Methodology (mirrors bench_fig7c, where offered parallelism tracks the
// core count): the serialized resource sharding multiplies is each shard's
// rollback-protection counter — every group commit takes one ROTE round,
// so a single shard's saturated append rate is batch/round no matter how
// much hardware sits under it. We run a closed loop of kClientsPerShard
// clients per shard (offered load tracks provisioned capacity, as in any
// horizontal-scaling experiment) with the simulated counter RTT ON, and
// measure aggregate pairs/s. Shard counter rounds overlap — they are
// independent clusters — so throughput scales with the shard count until
// CPU saturates; on this container (often 1 core) the overlap is entirely
// in the simulated network wait, which is exactly the regime the paper's
// TPM-bound appends live in (§3.1).
//
// Acceptance floor: >= 3x aggregate append throughput at 4 shards vs 1.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/log_merge.h"
#include "src/core/log_segment.h"
#include "src/core/logger.h"
#include "src/core/shard.h"
#include "src/services/git_service.h"
#include "src/ssm/git_ssm.h"

namespace seal::bench {
namespace {

constexpr int kClientsPerShard = 4;
// Simulated cross-machine RTT for each shard's counter quorum (the paper's
// ROTE deployment measures ~1-40 ms per counter round depending on the
// quorum's spread). 4 ms keeps the commit round decisively above the
// per-round CPU cost (batch drain + head signature + group-commit wakeups),
// so the measurement isolates the serialized-counter bottleneck that
// sharding multiplies instead of this container's core count.
constexpr int64_t kCounterRttNanos = 4'000'000;

std::function<std::unique_ptr<core::ServiceModule>()> GitFactory() {
  return [] { return std::make_unique<ssm::GitModule>(); };
}

// Scaling-phase SSM: one tuple per pair, no request parsing. The scaling
// measurement targets the sharded append pipeline (ticket sequencing,
// chain hash, seadb insert, segment write, counter round) — an SSM's HTTP
// parse is per-pair CPU that any core count scales trivially and would
// only blur the single-core counter-overlap signal.
class AppendOnlyModule : public core::ServiceModule {
 public:
  std::string name() const override { return "append-only"; }
  std::vector<std::string> Schema() const override { return {"CREATE TABLE ops(time, body)"}; }
  std::vector<core::Invariant> Invariants() const override { return {}; }
  std::vector<std::string> TrimmingQueries() const override { return {}; }
  void Log(std::string_view request, std::string_view /*response*/, int64_t /*time*/,
           std::vector<core::LogTuple>* out) override {
    out->push_back(core::LogTuple{
        "ops", {db::Value(std::string(request.substr(0, std::min<size_t>(request.size(), 32))))}});
  }
};

std::function<std::unique_ptr<core::ServiceModule>()> AppendOnlyFactory() {
  return [] { return std::make_unique<AppendOnlyModule>(); };
}

core::ShardSetOptions ShardedOptions(size_t shards, const std::string& base) {
  core::ShardSetOptions options;
  options.shards = shards;
  options.libseal.enclave.inject_costs = false;
  options.libseal.use_async_calls = false;  // drive loggers directly
  options.libseal.logger.check_interval = 0;
  options.libseal.audit_log.mode = core::PersistenceMode::kDisk;
  options.libseal.audit_log.path = base;
  // The per-shard rollback-protection counter is the resource under test:
  // leave its simulated quorum latency ON.
  options.libseal.audit_log.counter_options.inject_latency = true;
  options.libseal.audit_log.counter_options.network_rtt_nanos = kCounterRttNanos;
  // fsync off: measure the append path (chain + seadb + serialisation),
  // not the device; the durability cost is bench_append's subject.
  options.libseal.audit_log.fsync = false;
  options.epoch_counter.inject_latency = false;
  for (size_t k = 0; k < shards; ++k) {
    core::RemoveLogFiles(base + ".shard" + std::to_string(k));
  }
  std::remove((base + ".epoch").c_str());
  return options;
}

// One route key per thread, striped across shards the way the connection
// router balances fresh clients. Distinct keys so the per-shard intake
// sharding (keyed on conn id) is exercised too.
std::vector<uint64_t> StripedKeys(size_t shards, int threads) {
  std::vector<std::vector<uint64_t>> per_shard(shards);
  std::vector<uint64_t> keys;
  for (uint64_t key = 0; static_cast<int>(keys.size()) < threads; ++key) {
    auto& bucket = per_shard[core::ShardSet::ShardFor(key, shards)];
    bucket.push_back(key);
    keys.clear();
    for (int t = 0; t < threads; ++t) {
      const auto& list = per_shard[static_cast<size_t>(t) % shards];
      if (list.size() <= static_cast<size_t>(t) / shards) {
        break;
      }
      keys.push_back(list[static_cast<size_t>(t) / shards]);
    }
  }
  return keys;
}

struct ShardRunResult {
  double pairs_per_sec = 0;
  double ns_per_pair = 0;
  double anchor_ms = 0;
  double crossshard_ms = 0;
  size_t entries = 0;
};

ShardRunResult ShardedAppendRun(size_t shards, int pairs_per_thread) {
  core::ShardSet set(
      ShardedOptions(shards, TempPath("sharding_" + std::to_string(shards) + ".log")),
      AppendOnlyFactory());
  if (!set.Init().ok()) {
    return {};
  }
  const int threads = kClientsPerShard * static_cast<int>(shards);
  const std::vector<uint64_t> keys = StripedKeys(shards, threads);

  // Pre-serialise the traffic so the run measures the shards, not the
  // backend.
  std::vector<std::string> requests(static_cast<size_t>(threads));
  std::vector<std::string> responses(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    requests[static_cast<size_t>(t)] = "op-" + std::to_string(t);
    responses[static_cast<size_t>(t)] = "ok";
  }

  int64_t start = NowNanos();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < pairs_per_thread; ++i) {
        (void)set.OnPair(keys[static_cast<size_t>(t)], requests[static_cast<size_t>(t)],
                         responses[static_cast<size_t>(t)], false);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  int64_t elapsed = NowNanos() - start;

  ShardRunResult result;
  const uint64_t total = static_cast<uint64_t>(threads) * static_cast<uint64_t>(pairs_per_thread);
  result.ns_per_pair = static_cast<double>(elapsed) / static_cast<double>(total);
  result.pairs_per_sec = static_cast<double>(total) / (static_cast<double>(elapsed) / 1e9);

  int64_t anchor_start = NowNanos();
  auto anchored = set.AnchorEpoch();
  result.anchor_ms = static_cast<double>(NowNanos() - anchor_start) / 1e6;
  if (!anchored.ok()) {
    std::printf("  anchor failed: %s\n", anchored.status().ToString().c_str());
  }
  int64_t cross_start = NowNanos();
  auto cross = set.CheckCrossShard();
  result.crossshard_ms = static_cast<double>(NowNanos() - cross_start) / 1e6;
  if (cross.ok()) {
    result.entries = cross->merged_entries;
  }
  set.Shutdown();
  return result;
}

size_t ViolationRows(const core::CheckReport& report) {
  size_t rows = 0;
  for (const auto& violation : report.violations) {
    rows += violation.rows.rows.size();
  }
  return rows;
}

// The correctness half of the acceptance criterion: a rollback attack whose
// evidence spans shards yields IDENTICAL violation results from (a) the
// live cross-shard check, (b) an offline log_merge of the durable shard
// logs, and (c) a single-instance replay of the same trace.
bool EquivalenceRun() {
  const std::string base = TempPath("sharding_equiv.log");
  core::ShardSetOptions options = ShardedOptions(4, base);
  // Correctness phase: the counter latency only slows it down.
  options.libseal.audit_log.counter_options.inject_latency = false;
  core::ShardSet set(options, GitFactory());
  if (!set.Init().ok()) {
    return false;
  }
  services::GitBackend backend;
  std::vector<std::pair<std::string, std::string>> trace;
  auto pump = [&](uint64_t key, const http::HttpRequest& req) {
    http::HttpResponse rsp = backend.Handle(req);
    trace.emplace_back(req.Serialize(), rsp.Serialize());
    return set.OnPair(key, trace.back().first, trace.back().second, false).ok();
  };
  for (int i = 1; i <= 12; ++i) {
    if (!pump(static_cast<uint64_t>(i),
              services::MakeGitPush("repo", {{"main", "c" + std::to_string(i)}}))) {
      return false;
    }
  }
  backend.set_attack(services::GitBackend::Attack::kRollback);
  if (!pump(99, services::MakeGitFetch("repo"))) {
    return false;
  }

  auto cross = set.CheckCrossShard();
  if (!cross.ok()) {
    std::printf("  cross-shard check failed: %s\n", cross.status().ToString().c_str());
    return false;
  }
  const size_t cross_rows = ViolationRows(cross->report);

  std::vector<core::PartialLog> partials;
  for (size_t k = 0; k < set.shard_count(); ++k) {
    core::PartialLog partial;
    partial.path = base + ".shard" + std::to_string(k);
    partial.log_public_key = set.shard(k).log_public_key();
    partial.counter = &set.logger(k)->log().counter();
    partials.push_back(std::move(partial));
  }
  ssm::GitModule module;
  auto merged = core::MergeVerifiedLogs(partials, module);
  if (!merged.ok()) {
    std::printf("  offline merge failed: %s\n", merged.status().ToString().c_str());
    return false;
  }
  size_t offline_rows = 0;
  for (const core::Invariant& invariant : module.Invariants()) {
    auto r = merged->database.Execute(invariant.query);
    if (!r.ok()) {
      return false;
    }
    offline_rows += r->rows.size();
  }

  core::AuditLogOptions single_log;
  single_log.counter_options.inject_latency = false;
  core::LoggerOptions single_logger;
  single_logger.check_interval = 0;
  core::AuditLogger single(std::make_unique<ssm::GitModule>(), single_log, single_logger,
                           crypto::EcdsaPrivateKey::FromSeed(ToBytes("bench-sharding-single")));
  if (!single.Init().ok()) {
    return false;
  }
  for (const auto& [req, rsp] : trace) {
    if (!single.OnPair(1, req, rsp, false).ok()) {
      return false;
    }
  }
  auto replay = single.CheckInvariants();
  if (!replay.ok()) {
    return false;
  }
  const size_t single_rows = ViolationRows(*replay);

  set.Shutdown();
  std::printf("equivalence: cross-shard %zu rows, offline merge %zu rows, single replay %zu rows\n",
              cross_rows, offline_rows, single_rows);
  return cross_rows > 0 && cross_rows == offline_rows && cross_rows == single_rows;
}

}  // namespace
}  // namespace seal::bench

int main(int argc, char** argv) {
  using namespace seal::bench;
  using namespace seal;

  bool quick = false;
  std::string out_path = "BENCH_sharding.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const int pairs_per_thread = quick ? 300 : 2000;

  std::printf(
      "=== sharded append scaling (%d closed-loop clients/shard, %d pairs/client,\n"
      "    disk fsync off, counter quorum RTT %.1f ms — the serialized resource) ===\n",
      kClientsPerShard, pairs_per_thread, static_cast<double>(kCounterRttNanos) / 1e6);
  const size_t shard_counts[] = {1, 2, 4, 8};
  std::vector<ShardRunResult> runs;
  for (size_t shards : shard_counts) {
    // Warm-up pass amortises first-touch costs (file creation, seadb
    // schema) out of the measured run.
    if (runs.empty()) {
      (void)ShardedAppendRun(shards, std::min(pairs_per_thread, 50));
    }
    runs.push_back(ShardedAppendRun(shards, pairs_per_thread));
    const ShardRunResult& r = runs.back();
    std::printf(
        "  %zu shard%s: %9.0f pairs/s (%6.0f ns/pair), anchor %6.2f ms, cross-check %6.2f ms\n",
        shards, shards == 1 ? " " : "s", r.pairs_per_sec, r.ns_per_pair, r.anchor_ms,
        r.crossshard_ms);
  }
  const double speedup2 = runs[1].pairs_per_sec / runs[0].pairs_per_sec;
  const double speedup4 = runs[2].pairs_per_sec / runs[0].pairs_per_sec;
  const double speedup8 = runs[3].pairs_per_sec / runs[0].pairs_per_sec;
  std::printf("speedup vs 1 shard: x2=%.2f  x4=%.2f  x8=%.2f (acceptance floor at 4: 3x)\n\n",
              speedup2, speedup4, speedup8);

  std::printf("=== sharded vs single-instance equivalence ===\n");
  const bool equivalent = EquivalenceRun();
  std::printf("equivalent: %s\n\n", equivalent ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"sharding\",\n"
                 "  \"clients_per_shard\": %d,\n"
                 "  \"pairs_per_client\": %d,\n"
                 "  \"shards\": [1, 2, 4, 8],\n"
                 "  \"pairs_per_sec\": [%.1f, %.1f, %.1f, %.1f],\n"
                 "  \"ns_per_pair\": [%.1f, %.1f, %.1f, %.1f],\n"
                 "  \"anchor_ms\": [%.3f, %.3f, %.3f, %.3f],\n"
                 "  \"crossshard_check_ms\": [%.3f, %.3f, %.3f, %.3f],\n"
                 "  \"speedup_x2\": %.3f,\n"
                 "  \"speedup_x4\": %.3f,\n"
                 "  \"speedup_x8\": %.3f,\n"
                 "  \"equivalent\": %s,\n"
                 "  \"quick\": %s\n"
                 "}\n",
                 kClientsPerShard, pairs_per_thread, runs[0].pairs_per_sec, runs[1].pairs_per_sec,
                 runs[2].pairs_per_sec, runs[3].pairs_per_sec, runs[0].ns_per_pair,
                 runs[1].ns_per_pair, runs[2].ns_per_pair, runs[3].ns_per_pair, runs[0].anchor_ms,
                 runs[1].anchor_ms, runs[2].anchor_ms, runs[3].anchor_ms, runs[0].crossshard_ms,
                 runs[1].crossshard_ms, runs[2].crossshard_ms, runs[3].crossshard_ms, speedup2,
                 speedup4, speedup8, equivalent ? "true" : "false", quick ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  PrintMetricsSnapshot("bench_sharding");
  return (speedup4 >= 3.0 && equivalent) ? 0 : 1;
}
