// Figure 7b: Squid throughput vs latency with 1 KB content, LibreSSL vs
// LibSEAL. Two TLS legs (client-proxy, proxy-origin) mean two handshakes
// and double en-/decryption per request, so the proxy is slower than the
// plain web server and the enclave overhead is larger.
//
// Paper result: 850 -> 590 req/s (-31%).
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/services/http_server.h"
#include "src/services/proxy.h"
#include "src/services/static_content.h"

namespace seal::bench {
namespace {

double RunVariant(bool libseal) {
  net::Network network;
  tls::TlsConfig origin_tls = ServerTls();
  services::PlainTransport origin_transport(origin_tls);
  services::HttpServer origin(&network, {.address = "origin:443"}, &origin_transport,
                              services::ServeStaticContent);
  if (!origin.Start().ok()) {
    return 0;
  }

  std::unique_ptr<core::LibSealRuntime> runtime;
  std::unique_ptr<services::ServerTransport> transport;
  tls::TlsConfig proxy_tls = ServerTls();
  if (!libseal) {
    transport = std::make_unique<services::PlainTransport>(proxy_tls);
  } else {
    core::LibSealOptions options = LibSealBenchOptions(Variant::kLibSealProcess, "");
    // The runtime also drives the upstream client leg (one TLS library for
    // the whole proxy, as in the paper), so it needs the trust anchors.
    options.tls.trusted_roots = {Pki().ca.cert};
    runtime = std::make_unique<core::LibSealRuntime>(std::move(options), nullptr);
    if (!runtime->Init().ok()) {
      return 0;
    }
    transport = std::make_unique<services::LibSealTransport>(runtime.get());
  }
  services::ProxyServer::Options proxy_options;
  proxy_options.listen_address = "proxy:3128";
  proxy_options.upstream_address = "origin:443";
  proxy_options.upstream_tls = ClientTls();
  proxy_options.upstream_runtime = runtime.get();  // null for the native run
  services::ProxyServer proxy(&network, proxy_options, transport.get());
  if (!proxy.Start().ok()) {
    return 0;
  }

  tls::TlsConfig client_tls = ClientTls();
  std::printf("%-16s %8s %10s %10s\n", libseal ? "Squid-LibSEAL" : "Squid-LibreSSL", "clients",
              "req/s", "mean ms");
  double best = 0;
  for (int clients : {1, 2, 4, 8}) {
    LoadOptions load;
    load.clients = clients;
    load.seconds = 1.2;
    load.keep_alive = false;  // fresh connections: both handshakes pay
    LoadResult result = RunClosedLoop(
        &network, "proxy:3128", client_tls,
        [](int, uint64_t) { return services::MakeContentRequest(1024); }, load);
    best = std::max(best, result.throughput_rps);
    std::printf("%-16s %8d %10.0f %10.2f\n", "", clients, result.throughput_rps,
                result.mean_latency_ms);
  }
  proxy.Stop();
  origin.Stop();
  if (runtime != nullptr) {
    runtime->Shutdown();
  }
  return best;
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  std::printf("=== Figure 7b: Squid throughput/latency, 1 KB content ===\n");
  double native = RunVariant(false);
  double libseal = RunVariant(true);
  std::printf("\nmax throughput: LibreSSL=%.0f LibSEAL=%.0f (%.0f%% overhead)\n", native, libseal,
              100 * (1 - libseal / native));
  std::printf("paper: 850 -> 590 req/s, a 31%% overhead (two TLS legs per request)\n");
  return 0;
}
