// Restart cost of the durable log lifecycle: each round appends a fresh
// tail, trims everything older into sealed archives, then measures a cold
// Recover() over the same path. Total history grows ~10x across the run
// while the hot tail stays fixed, so the acceptance criterion is a flat
// recovery time (snapshot + O(tail) replay, not O(full history)). Emits
// BENCH_recovery.json; --quick shrinks the tail for the CI smoke step.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/audit_log.h"

namespace seal::bench {
namespace {

std::vector<std::string> Schema() {
  return {"CREATE TABLE updates(time, repo, branch, cid, type)"};
}

db::Row UpdateRow(int64_t time) {
  return {db::Value(time), db::Value(std::string("repo")),
          db::Value("b" + std::to_string(time % 7)),
          db::Value("commit-" + std::to_string(time)), db::Value(std::string("update"))};
}

core::AuditLogOptions LifecycleOptions(const std::string& path) {
  core::AuditLogOptions options;
  options.mode = core::PersistenceMode::kDisk;
  options.path = path;
  options.encryption_key = FromHex("000102030405060708090a0b0c0d0e0f");
  options.segment_bytes = 32 * 1024;
  options.snapshot_interval_bytes = 64 * 1024;
  options.archive_trimmed = true;
  options.recover = true;
  options.counter_options.inject_latency = false;
  return options;
}

crypto::EcdsaPrivateKey LogKey() {
  return crypto::EcdsaPrivateKey::FromSeed(ToBytes("bench-recovery"));
}

struct RoundResult {
  size_t history_entries = 0;   // archived + live before this recovery
  size_t live_entries = 0;      // entries the recovered log holds
  size_t replayed_entries = 0;  // tail entries replayed from segments
  bool snapshot_loaded = false;
  int64_t recovery_nanos = 0;
};

}  // namespace
}  // namespace seal::bench

int main(int argc, char** argv) {
  using namespace seal::bench;
  using namespace seal;

  bool quick = false;
  std::string out_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const int tail_rows = quick ? 300 : 2000;
  const int rounds = 10;  // history ends up 10x the hot tail
  const int commit_every = 50;

  const std::string path = TempPath("recovery.log");
  core::RemoveLogFiles(path);
  const core::AuditLogOptions options = LifecycleOptions(path);

  std::printf("=== durable log lifecycle: restart cost vs history size ===\n");
  std::printf("tail %d rows/round, %d rounds, segment %zu B, snapshot every %zu B\n\n",
              tail_rows, rounds, options.segment_bytes, options.snapshot_interval_bytes);

  std::vector<RoundResult> results;
  int64_t next_time = 1;
  size_t total_history = 0;
  bool failed = false;

  for (int round = 0; round < rounds && !failed; ++round) {
    // Cold restart over whatever the previous round left behind.
    core::AuditLog log(options, LogKey());
    if (!log.ExecuteSchema(Schema()).ok()) {
      std::printf("schema failed\n");
      return 1;
    }
    core::AuditLog::RecoveryInfo info;
    Status recovered = log.Recover(&info);
    if (!recovered.ok()) {
      std::printf("round %d: recovery failed: %s\n", round, recovered.message().c_str());
      return 1;
    }
    RoundResult r;
    r.history_entries = total_history;
    r.live_entries = log.entry_count();
    r.replayed_entries = info.replayed_entries;
    r.snapshot_loaded = info.snapshot_loaded;
    r.recovery_nanos = info.recovery_nanos;
    results.push_back(r);
    std::printf("round %2d: history %7zu entries, live %5zu, replayed %5zu, snapshot=%d, "
                "recover %8.3f ms\n",
                round, r.history_entries, r.live_entries, r.replayed_entries,
                r.snapshot_loaded ? 1 : 0, static_cast<double>(r.recovery_nanos) / 1e6);

    // Grow the history: append a fresh tail, then trim everything older
    // than the tail into the archive.
    for (int i = 0; i < tail_rows; ++i) {
      if (!log.Append("updates", UpdateRow(next_time), 1000 + next_time).ok()) {
        std::printf("append failed\n");
        return 1;
      }
      ++next_time;
      if (next_time % commit_every == 0 && !log.CommitHead().ok()) {
        std::printf("commit failed\n");
        return 1;
      }
    }
    if (!log.CommitHead().ok()) {
      std::printf("commit failed\n");
      return 1;
    }
    total_history = static_cast<size_t>(next_time - 1);
    const int64_t cutoff = next_time - 1 - tail_rows;
    if (cutoff > 0) {
      Status trimmed =
          log.Trim({"DELETE FROM updates WHERE time <= " + std::to_string(cutoff)});
      if (!trimmed.ok()) {
        std::printf("trim failed: %s\n", trimmed.message().c_str());
        return 1;
      }
    }
  }

  // Completeness: archives + hot log must reproduce the whole history.
  auto full = core::AuditLog::ReadFullHistory(path, options.encryption_key);
  const bool history_complete = full.ok() && full->size() == total_history;
  std::printf("\nfull history offline: %zu entries (expected %zu) -> %s\n",
              full.ok() ? full->size() : 0, total_history,
              history_complete ? "complete" : "INCOMPLETE");

  // Flatness: recovery time of the last round vs the first post-trim
  // round (round 0 recovers an empty log; round 1 is the baseline).
  double ratio = 0;
  if (results.size() >= 3 && results[1].recovery_nanos > 0) {
    ratio = static_cast<double>(results.back().recovery_nanos) /
            static_cast<double>(results[1].recovery_nanos);
  }
  const double growth = results.size() >= 2 && results[1].history_entries > 0
                            ? static_cast<double>(results.back().history_entries) /
                                  static_cast<double>(results[1].history_entries)
                            : 0;
  std::printf("history growth %.1fx, recovery time ratio %.2fx (acceptance: flat)\n", growth,
              ratio);

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"recovery\",\n  \"tail_rows\": %d,\n  \"rounds\": %d,\n",
                 tail_rows, rounds);
    auto print_array = [&](const char* name, auto getter, const char* fmt) {
      std::fprintf(f, "  \"%s\": [", name);
      for (size_t i = 0; i < results.size(); ++i) {
        std::fprintf(f, fmt, getter(results[i]));
        if (i + 1 < results.size()) {
          std::fprintf(f, ", ");
        }
      }
      std::fprintf(f, "],\n");
    };
    print_array("history_entries", [](const RoundResult& r) { return r.history_entries; },
                "%zu");
    print_array("replayed_entries", [](const RoundResult& r) { return r.replayed_entries; },
                "%zu");
    print_array("recovery_ms",
                [](const RoundResult& r) { return static_cast<double>(r.recovery_nanos) / 1e6; },
                "%.3f");
    print_array("snapshot_loaded",
                [](const RoundResult& r) { return static_cast<int>(r.snapshot_loaded); }, "%d");
    std::fprintf(f,
                 "  \"history_growth\": %.2f,\n"
                 "  \"recovery_time_ratio\": %.2f,\n"
                 "  \"full_history_complete\": %s,\n"
                 "  \"quick\": %s\n"
                 "}\n",
                 growth, ratio, history_complete ? "true" : "false", quick ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  PrintMetricsSnapshot("bench_recovery");

  // Fail on lost history or clearly super-linear restart cost; the flat-
  // time criterion gets a generous noise margin for shared CI runners.
  if (!history_complete) {
    return 1;
  }
  return ratio <= 8.0 ? 0 : 1;
}
