// §4.2 micro-benchmarks: the cost of enclave transitions and the effect of
// the three transition-reduction techniques.
//
// Paper numbers: one ecall costs 8,400-8,500 cycles with one thread inside
// the enclave (6x a system call) and ~170,000 cycles with 48 threads (20x);
// the three optimisations (outside memory pool, in-enclave locks/RNG,
// app data outside) cut ecalls by up to 31% and ocalls by up to 49%,
// improving Apache throughput by up to 70%.
//
// This binary uses google-benchmark for the call-gate micro part and a
// load run for the reduction ablation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "src/services/http_server.h"
#include "src/services/static_content.h"

namespace seal::bench {
namespace {

// --- call-gate micro-benchmarks ---

void BM_EcallSingleThread(benchmark::State& state) {
  sgx::EnclaveConfig config;  // costs injected: this measures the model
  sgx::Enclave enclave(config, ToBytes("micro"), "signer");
  int id = enclave.RegisterEcall("nop", [](void*) {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclave.Ecall(id, nullptr));
  }
  state.counters["model_cycles_per_transition"] = static_cast<double>(
      enclave.stats().simulated_cycles / (2 * std::max<uint64_t>(1, enclave.stats().ecalls)));
}
BENCHMARK(BM_EcallSingleThread);

void BM_EcallCrowdedEnclave(benchmark::State& state) {
  // Hold N threads inside the enclave and measure one more transition;
  // reproduces the 20x growth at 48 threads.
  sgx::EnclaveConfig config;
  sgx::Enclave enclave(config, ToBytes("micro"), "signer");
  int nop = enclave.RegisterEcall("nop", [](void*) {});
  std::atomic<bool> release{false};
  std::atomic<int> entered{0};
  int hold = enclave.RegisterEcall("hold", [&](void*) {
    entered.fetch_add(1);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  int occupants = static_cast<int>(state.range(0));
  std::vector<std::thread> holders;
  for (int i = 0; i < occupants; ++i) {
    holders.emplace_back([&] { (void)enclave.Ecall(hold, nullptr); });
  }
  while (entered.load() < occupants) {
    std::this_thread::yield();
  }
  enclave.ResetStats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclave.Ecall(nop, nullptr));
  }
  state.counters["model_cycles_per_transition"] = static_cast<double>(
      enclave.stats().simulated_cycles / (2 * std::max<uint64_t>(1, enclave.stats().ecalls)));
  release.store(true);
  for (auto& t : holders) {
    t.join();
  }
}
BENCHMARK(BM_EcallCrowdedEnclave)->Arg(0)->Arg(12)->Arg(24)->Arg(47);

void BM_AsyncEcall(benchmark::State& state) {
  sgx::EnclaveConfig config;
  sgx::Enclave enclave(config, ToBytes("micro"), "signer");
  int id = enclave.RegisterEcall("nop", [](void*) {});
  asyncall::AsyncCallRuntime::Options options;
  options.enclave_threads = 1;
  options.tasks_per_thread = 8;
  asyncall::AsyncCallRuntime runtime(&enclave, options);
  runtime.Start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.AsyncEcall(id, nullptr));
  }
  runtime.Stop();
}
BENCHMARK(BM_AsyncEcall);

// --- transition-reduction ablation (run after the micro-benchmarks) ---

struct AblationResult {
  double rps = 0;
  // Per-request transition counts from two independent sources that must
  // agree: the enclave's internal stats() tally and the seal::obs counters.
  uint64_t ecalls = 0;
  uint64_t ocalls = 0;
  uint64_t obs_ecalls = 0;
  uint64_t obs_ocalls = 0;
};

AblationResult RunAblation(bool optimised) {
  net::Network network;
  core::LibSealOptions options = LibSealBenchOptions(Variant::kLibSealProcess, "");
  options.use_async_calls = false;  // §4.2 predates §4.3: count raw transitions
  options.reductions.outside_memory_pool = optimised;
  options.reductions.in_enclave_locks_rng = optimised;
  options.reductions.ex_data_outside = optimised;
  core::LibSealRuntime runtime(options, nullptr);
  if (!runtime.Init().ok()) {
    return {};
  }
  services::LibSealTransport transport(&runtime);
  services::HttpServer server(&network, {.address = "web:443"}, &transport,
                              services::ServeStaticContent);
  if (!server.Start().ok()) {
    return {};
  }
  runtime.enclave().ResetStats();
  obs::Snapshot before = obs::Registry::Global().TakeSnapshot();
  tls::TlsConfig client_tls = ClientTls();
  LoadOptions load;
  load.clients = 2;
  load.seconds = 1.0;
  load.keep_alive = false;
  LoadResult result = RunClosedLoop(
      &network, "web:443", client_tls,
      [](int, uint64_t) { return services::MakeContentRequest(1024); }, load);
  obs::Snapshot after = obs::Registry::Global().TakeSnapshot();
  AblationResult ablation;
  ablation.rps = result.throughput_rps;
  auto stats = runtime.enclave().stats();
  ablation.ecalls = result.requests > 0 ? stats.ecalls / result.requests : 0;
  ablation.ocalls = result.requests > 0 ? stats.ocalls / result.requests : 0;
  // Counters are process-global, so diff snapshots rather than reading raw
  // totals (the google-benchmark section above also moved them).
  if (result.requests > 0) {
    ablation.obs_ecalls =
        (after.counter("sgx_ecalls_total") - before.counter("sgx_ecalls_total")) /
        result.requests;
    ablation.obs_ocalls =
        (after.counter("sgx_ocalls_total") - before.counter("sgx_ocalls_total")) /
        result.requests;
  }
  server.Stop();
  runtime.Shutdown();
  return ablation;
}

void ReductionAblation() {
  std::printf("\n=== §4.2 transition-reduction ablation (synchronous calls) ===\n");
  AblationResult naive = RunAblation(false);
  AblationResult optimised = RunAblation(true);
  std::printf("%-22s %12s %14s %14s %14s %14s\n", "", "req/s", "ecalls/req", "ocalls/req",
              "obs ecalls/req", "obs ocalls/req");
  std::printf("%-22s %12.0f %14lu %14lu %14lu %14lu\n", "naive port", naive.rps,
              static_cast<unsigned long>(naive.ecalls), static_cast<unsigned long>(naive.ocalls),
              static_cast<unsigned long>(naive.obs_ecalls),
              static_cast<unsigned long>(naive.obs_ocalls));
  std::printf("%-22s %12.0f %14lu %14lu %14lu %14lu\n", "with reductions", optimised.rps,
              static_cast<unsigned long>(optimised.ecalls),
              static_cast<unsigned long>(optimised.ocalls),
              static_cast<unsigned long>(optimised.obs_ecalls),
              static_cast<unsigned long>(optimised.obs_ocalls));
  if (naive.rps > 0 && naive.ocalls > 0 && naive.ecalls > 0) {
    std::printf("%-22s %11.0f%% %13.0f%% %13.0f%%\n", "change (stats)",
                100.0 * (optimised.rps / naive.rps - 1.0),
                100.0 * (1.0 - static_cast<double>(optimised.ecalls) /
                                   static_cast<double>(naive.ecalls)),
                100.0 * (1.0 - static_cast<double>(optimised.ocalls) /
                                   static_cast<double>(naive.ocalls)));
  }
  if (naive.obs_ecalls > 0 && naive.obs_ocalls > 0) {
    std::printf("%-22s %12s %13.0f%% %13.0f%%\n", "change (obs counters)", "",
                100.0 * (1.0 - static_cast<double>(optimised.obs_ecalls) /
                                   static_cast<double>(naive.obs_ecalls)),
                100.0 * (1.0 - static_cast<double>(optimised.obs_ocalls) /
                                   static_cast<double>(naive.obs_ocalls)));
  }
  if (naive.obs_ecalls != naive.ecalls || naive.obs_ocalls != naive.ocalls ||
      optimised.obs_ecalls != optimised.ecalls || optimised.obs_ocalls != optimised.ocalls) {
    std::printf("WARNING: obs counters disagree with enclave stats\n");
  }
  std::printf("paper: -31%% ecalls, -49%% ocalls, up to +70%% throughput\n");
}

}  // namespace
}  // namespace seal::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  seal::bench::ReductionAblation();
  seal::bench::PrintMetricsSnapshot("bench_transitions (cumulative)");
  return 0;
}
