// Figure 5b: ownCloud throughput and latency with and without LibSEAL.
//
// Paper setup: clients send document updates (single characters and whole
// paragraphs); the PHP engine is the bottleneck, so logging to disk adds
// no overhead on top of in-memory logging. The PHP bottleneck is modelled
// as a fixed per-request compute cost in the server.
//
// Paper result: 115 req/s native -> 100 req/s (-13%); disk == mem.
#include <cstdio>
#include <memory>
#include <mutex>

#include "bench/bench_common.h"
#include "src/services/http_server.h"
#include "src/services/owncloud_service.h"
#include "src/ssm/owncloud_ssm.h"

namespace seal::bench {
namespace {

// ~8.5 ms of "PHP" per request saturates a single core at ~115 req/s,
// matching the paper's absolute native throughput.
constexpr int64_t kPhpComputeNanos = 8'500'000;

double RunVariant(Variant variant) {
  net::Network network;
  services::OwnCloudService owncloud;

  std::unique_ptr<core::LibSealRuntime> runtime;
  std::unique_ptr<services::ServerTransport> transport;
  tls::TlsConfig server_tls = ServerTls();
  if (variant == Variant::kNative) {
    transport = std::make_unique<services::PlainTransport>(server_tls);
  } else {
    runtime = std::make_unique<core::LibSealRuntime>(
        LibSealBenchOptions(variant, TempPath("fig5b.log"), /*check_interval=*/75),
        std::make_unique<ssm::OwnCloudModule>());
    if (!runtime->Init().ok()) {
      return 0;
    }
    transport = std::make_unique<services::LibSealTransport>(runtime.get());
  }

  services::HttpServer server(
      &network, {.address = "owncloud:443", .per_request_compute_nanos = kPhpComputeNanos},
      transport.get(), [&](const http::HttpRequest& r) { return owncloud.Handle(r); });
  if (!server.Start().ok()) {
    return 0;
  }

  tls::TlsConfig client_tls = ClientTls();
  std::printf("%-16s %8s %10s %10s %10s\n", VariantName(variant), "clients", "req/s",
              "mean ms", "p95 ms");
  double best = 0;
  for (int clients : {1, 2, 4, 8}) {
    std::vector<std::unique_ptr<services::OwnCloudWorkload>> workloads;
    for (int c = 0; c < clients; ++c) {
      workloads.push_back(std::make_unique<services::OwnCloudWorkload>(
          /*documents=*/4, /*clients=*/clients, static_cast<uint64_t>(c) + 1));
    }
    std::mutex workload_mutex;
    LoadOptions load;
    load.clients = clients;
    load.seconds = 1.2;
    LoadResult result = RunClosedLoop(
        &network, "owncloud:443", client_tls,
        [&](int c, uint64_t) {
          std::lock_guard<std::mutex> lock(workload_mutex);
          return workloads[static_cast<size_t>(c)]->Next();
        },
        load);
    best = std::max(best, result.throughput_rps);
    std::printf("%-16s %8d %10.0f %10.2f %10.2f\n", "", clients, result.throughput_rps,
                result.mean_latency_ms, result.p95_latency_ms);
  }
  server.Stop();
  if (runtime != nullptr) {
    runtime->Shutdown();
  }
  return best;
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  std::printf("=== Figure 5b: ownCloud throughput/latency (native vs LibSEAL) ===\n");
  double native = RunVariant(Variant::kNative);
  double mem = RunVariant(Variant::kLibSealMem);
  double disk = RunVariant(Variant::kLibSealDisk);
  std::printf("\nmax throughput: native=%.0f mem=%.0f (%.0f%%) disk=%.0f (%.0f%%)\n", native, mem,
              100 * (1 - mem / native), disk, 100 * (1 - disk / native));
  std::printf("paper: 115 -> 100 req/s (13%% overhead); disk adds nothing on top of mem\n");
  return 0;
}
