// Micro-benchmark for the seadb execution engines: filter, hash-join and
// aggregation throughput (input rows/s) of the row-at-a-time interpreter
// vs the vectorized columnar kernels (src/db/vector_exec.cc), over the
// identical tables and queries. Emits BENCH_scan.json for the perf-smoke
// job; results are cross-checked byte-identical before any timing counts.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/db/database.h"

namespace seal::bench {
namespace {

std::string Fingerprint(const db::QueryResult& r) {
  std::string out;
  for (const auto& c : r.columns) {
    out += c;
    out += '|';
  }
  for (const db::Row& row : r.rows) {
    for (const db::Value& v : row) {
      out += v.Serialize();
      out += '|';
    }
    out += ';';
  }
  return out;
}

db::Database BuildTables(int rows) {
  db::Database db;
  (void)db.Execute("CREATE TABLE t(time, k, v, s)");
  (void)db.Execute("CREATE TABLE d(time, k, c)");
  const char* tags[] = {"alpha", "bravo", "charlie-longer-than-inline", "delta"};
  for (int i = 0; i < rows; ++i) {
    // InsertRow: the logger's programmatic append path, no SQL parsing.
    (void)db.InsertRow("t", {db::Value(static_cast<int64_t>(i + 1)),
                             db::Value(static_cast<int64_t>(i % 1000)),
                             db::Value(static_cast<int64_t>((i * 37) % 2000 - 1000)),
                             db::Value(std::string(tags[i % 4]))});
  }
  for (int i = 0; i < rows / 10; ++i) {
    (void)db.InsertRow("d", {db::Value(static_cast<int64_t>(i + 1)),
                             db::Value(static_cast<int64_t>((i * 13) % 1000)),
                             db::Value(static_cast<int64_t>(i % 64 - 8))});
  }
  return db;
}

struct KernelResult {
  double interpreted_rows_per_sec = 0;
  double vectorized_rows_per_sec = 0;
  bool identical = false;

  double Speedup() const {
    return interpreted_rows_per_sec > 0 ? vectorized_rows_per_sec / interpreted_rows_per_sec : 0;
  }
};

// Times `sql` under both engines. Throughput is INPUT rows per second
// (`input_rows` per execution), the figure of merit for a scan kernel.
KernelResult MeasureKernel(db::Database& db, const std::string& sql, size_t input_rows) {
  KernelResult result;
  std::string fingerprints[2];
  for (int c = 0; c < 2; ++c) {
    db::Tuning tuning = db.tuning();
    tuning.use_vectorized = (c == 1);
    db.set_tuning(tuning);
    auto first = db.Execute(sql);
    if (!first.ok()) {
      std::printf("query failed: %s\n", sql.c_str());
      return result;
    }
    fingerprints[c] = Fingerprint(*first);
    // Run for >= 200ms or 3 iterations, whichever is more work.
    int iters = 0;
    int64_t start = NowNanos();
    int64_t elapsed = 0;
    do {
      (void)db.Execute(sql);
      ++iters;
      elapsed = NowNanos() - start;
    } while (elapsed < 200'000'000 || iters < 3);
    double rows_per_sec = static_cast<double>(input_rows) * static_cast<double>(iters) /
                          (static_cast<double>(elapsed) / 1e9);
    (c == 0 ? result.interpreted_rows_per_sec : result.vectorized_rows_per_sec) = rows_per_sec;
  }
  result.identical = fingerprints[0] == fingerprints[1];
  return result;
}

}  // namespace
}  // namespace seal::bench

int main(int argc, char** argv) {
  using namespace seal::bench;

  bool quick = false;
  std::string out_path = "BENCH_scan.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const int rows = quick ? 20'000 : 100'000;
  seal::db::Database db = BuildTables(rows);
  const size_t n = static_cast<size_t>(rows);

  struct Case {
    const char* name;
    std::string sql;
    size_t input_rows;
  } cases[] = {
      {"filter", "SELECT k, v FROM t WHERE v > 900 AND k < 500", n},
      {"join",
       "SELECT t.k, t.v, d.c FROM t JOIN d ON t.k = d.k WHERE d.c > 40",
       n + n / 10},
      {"aggregate", "SELECT k, COUNT(*), SUM(v), MAX(s) FROM t GROUP BY k", n},
  };

  std::printf("=== seadb kernels: input rows/s, interpreted vs vectorized (%d rows) ===\n", rows);
  std::printf("%-10s %16s %16s %9s %10s\n", "kernel", "interpreted", "vectorized", "speedup",
              "identical");
  KernelResult results[3];
  bool all_identical = true;
  for (int i = 0; i < 3; ++i) {
    results[i] = MeasureKernel(db, cases[i].sql, cases[i].input_rows);
    all_identical = all_identical && results[i].identical;
    std::printf("%-10s %16.0f %16.0f %8.1fx %10s\n", cases[i].name,
                results[i].interpreted_rows_per_sec, results[i].vectorized_rows_per_sec,
                results[i].Speedup(), results[i].identical ? "yes" : "NO");
  }

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"scan\",\n"
                 "  \"rows\": %d,\n"
                 "  \"filter_rows_per_sec\": {\"interpreted\": %.0f, \"vectorized\": %.0f},\n"
                 "  \"join_rows_per_sec\": {\"interpreted\": %.0f, \"vectorized\": %.0f},\n"
                 "  \"aggregate_rows_per_sec\": {\"interpreted\": %.0f, \"vectorized\": %.0f},\n"
                 "  \"speedup\": {\"filter\": %.2f, \"join\": %.2f, \"aggregate\": %.2f},\n"
                 "  \"results_identical\": %s,\n"
                 "  \"quick\": %s\n"
                 "}\n",
                 rows, results[0].interpreted_rows_per_sec, results[0].vectorized_rows_per_sec,
                 results[1].interpreted_rows_per_sec, results[1].vectorized_rows_per_sec,
                 results[2].interpreted_rows_per_sec, results[2].vectorized_rows_per_sec,
                 results[0].Speedup(), results[1].Speedup(), results[2].Speedup(),
                 all_identical ? "true" : "false", quick ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  return all_identical ? 0 : 1;
}
