// Figure 6: normalized invariant-checking + trimming time against the
// checking interval, for all three services.
//
// Checking rarely means each check is expensive (the log has grown);
// checking often wastes fixed per-check cost. Normalising the combined
// check+trim time by the interval length exposes an optimal interval.
// Paper optima: 25 requests (Git), 75 (ownCloud), 100 (Dropbox), with
// absolute check+trim costs of 0.3-0.4 ms at those optima (on SQLite; our
// interpreter is slower in absolute terms, so our optima shift right --
// the curve SHAPE is the reproduced result).
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/shard.h"
#include "src/services/dropbox_service.h"
#include "src/services/git_service.h"
#include "src/services/owncloud_service.h"
#include "src/ssm/dropbox_ssm.h"
#include "src/ssm/git_ssm.h"
#include "src/ssm/owncloud_ssm.h"

namespace seal::bench {
namespace {

using PairSource = std::function<std::pair<std::string, std::string>()>;

// Measures normalized check+trim cost (µs per request) at a given interval.
double MeasureNormalizedCost(const std::function<std::unique_ptr<core::ServiceModule>()>& module,
                             const PairSource& next_pair, int interval, int total_requests) {
  core::AuditLogOptions log_options;
  // Disk mode, as deployed: each trim rewrites the persisted log, re-signs
  // the chain head and runs a counter round -- the FIXED per-check cost
  // that makes checking too often expensive (the left arm of the U).
  log_options.mode = core::PersistenceMode::kDisk;
  log_options.path = TempPath("fig6_" + std::string(1, 'a' + interval % 26) + ".log");
  log_options.counter_options.inject_latency = true;
  log_options.counter_options.network_rtt_nanos = 200'000;
  core::LoggerOptions logger_options;
  logger_options.check_interval = static_cast<size_t>(interval);
  // Synchronous checking: the figure measures the check+trim cost itself
  // (reported per interval report), not its placement off the request path.
  logger_options.async_checking = false;
  core::AuditLogger logger(module(), log_options, logger_options,
                           crypto::EcdsaPrivateKey::FromSeed(ToBytes("fig6")));
  if (!logger.Init().ok()) {
    return 0;
  }
  int64_t check_trim_nanos = 0;
  for (int i = 0; i < total_requests; ++i) {
    auto [request, response] = next_pair();
    auto report = logger.OnPair(request, response, false);
    if (report.ok() && report->has_value()) {
      check_trim_nanos += (*report)->check_nanos + (*report)->trim_nanos;
    }
  }
  return static_cast<double>(check_trim_nanos) / 1e3 / static_cast<double>(total_requests);
}

void RunService(const char* name,
                const std::function<std::unique_ptr<core::ServiceModule>()>& module,
                const std::function<PairSource()>& make_source, int total_requests) {
  std::printf("%-10s", name);
  for (int interval : {5, 10, 25, 50, 75, 100, 150}) {
    PairSource source = make_source();
    double cost = MeasureNormalizedCost(module, source, interval, total_requests);
    std::printf(" %8.1f", cost);
  }
  std::printf("\n");
}

// --- Log-size sweep: what the indexes and incremental checking buy --------
//
// A fetch-heavy Git workload (advertisements dominate, so the log grows
// fast) with NO trimming, checked at fixed checkpoints as the log grows
// 10x. Three engine configurations over the identical byte stream:
//   seed        -- nested-loop joins, full scans, full re-check (the engine
//                  before this optimisation round)
//   indexed     -- time index + hash joins, still full re-check
//   incremental -- indexed + per-invariant watermarks
// Per-checkpoint check time should explode for seed, grow roughly linearly
// for indexed, and stay flat for incremental.

struct GrowthSample {
  size_t rows = 0;
  double check_ms[3] = {0, 0, 0};  // seed, indexed, incremental
};

void RunLogGrowth() {
  constexpr int kRepos = 4;
  constexpr int kBranches = 3;
  constexpr int kRounds = 12;
  constexpr int kPairsPerRound = 60;  // fetches: read traffic dominates
  constexpr int kWarmupPushes = 8;    // update churn, before measurement

  // Pre-serialise the whole workload once so every configuration replays
  // identical bytes.
  std::vector<std::pair<std::string, std::string>> pairs;
  {
    services::GitBackend backend;
    auto record = [&](const http::HttpRequest& req) {
      pairs.emplace_back(req.Serialize(), backend.Handle(req).Serialize());
    };
    for (int r = 0; r < kRepos; ++r) {  // seed every branch
      std::map<std::string, std::string> updates;
      for (int b = 0; b < kBranches; ++b) {
        updates["b" + std::to_string(b)] = "c0";
      }
      record(services::MakeGitPush("repo" + std::to_string(r), updates));
    }
    for (int i = 0; i < kWarmupPushes; ++i) {  // branch churn, unmeasured
      record(services::MakeGitPush("repo" + std::to_string(i % kRepos),
                                   {{"b" + std::to_string(i % kBranches),
                                     "c" + std::to_string(i + 1)}}));
    }
    for (int i = 0; i < kRounds * kPairsPerRound; ++i) {
      record(services::MakeGitFetch("repo" + std::to_string(i % kRepos)));
    }
  }

  const struct {
    const char* name;
    db::Tuning tuning;
    bool incremental;
  } kConfigs[3] = {
      // use_vectorized off throughout: this sweep isolates what indexes and
      // watermarks buy; the columnar engine has its own series below.
      {"seed", {.use_time_index = false, .use_hash_join = false, .use_vectorized = false}, false},
      {"indexed", {.use_time_index = true, .use_hash_join = true, .use_vectorized = false}, false},
      {"incremental",
       {.use_time_index = true, .use_hash_join = true, .use_vectorized = false},
       true},
  };

  std::vector<GrowthSample> samples(kRounds);
  for (int c = 0; c < 3; ++c) {
    core::AuditLogOptions log_options;  // memory mode: isolate checking cost
    log_options.counter_options.inject_latency = false;
    core::LoggerOptions logger_options;
    logger_options.check_interval = 0;  // checkpoints drive the checks
    logger_options.incremental_checking = kConfigs[c].incremental;
    logger_options.async_checking = false;  // time the round, not the handoff
    core::AuditLogger logger(std::make_unique<ssm::GitModule>(), log_options, logger_options,
                             crypto::EcdsaPrivateKey::FromSeed(ToBytes("fig6g")));
    if (!logger.Init().ok()) {
      return;
    }
    logger.log().database().set_tuning(kConfigs[c].tuning);
    size_t next = 0;
    for (int r = 0; r < kRepos + kWarmupPushes; ++r) {  // pushes, unmeasured
      (void)logger.OnPair(pairs[next].first, pairs[next].second, false);
      ++next;
    }
    // Bootstrap check on the tiny seeded log so the incremental
    // configuration enters round 1 with live watermarks; every measured
    // round is then steady-state.
    (void)logger.CheckInvariants();
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kPairsPerRound; ++i, ++next) {
        (void)logger.OnPair(pairs[next].first, pairs[next].second, false);
      }
      int64_t t0 = NowNanos();
      auto report = logger.CheckInvariants();
      int64_t t1 = NowNanos();
      if (!report.ok() || !report->clean()) {
        std::printf("unexpected check failure (%s)\n", kConfigs[c].name);
        return;
      }
      samples[static_cast<size_t>(round)].check_ms[c] = static_cast<double>(t1 - t0) / 1e6;
      samples[static_cast<size_t>(round)].rows =
          logger.log().database().TableSize("advertisements") +
          logger.log().database().TableSize("updates");
    }
  }

  std::printf("\n=== Log-size sweep: full check time (ms) vs log size, no trimming ===\n");
  std::printf("%8s %8s %10s %10s %12s\n", "round", "rows", "seed", "indexed", "incremental");
  for (int round = 0; round < kRounds; ++round) {
    const GrowthSample& s = samples[static_cast<size_t>(round)];
    std::printf("%8d %8zu %10.2f %10.2f %12.3f\n", round + 1, s.rows, s.check_ms[0],
                s.check_ms[1], s.check_ms[2]);
  }
  const GrowthSample& first = samples.front();
  const GrowthSample& last = samples.back();
  std::printf("\nat %zu rows: indexes alone %.1fx faster than seed; "
              "incremental round cost %.2fx its first round (flat = 1x)\n",
              last.rows, last.check_ms[0] / last.check_ms[1],
              last.check_ms[2] / first.check_ms[2]);
}

// --- Vectorized engine: scan/join-heavy check rounds ----------------------
//
// The Git invariants lean on correlated subqueries, which the vectorized
// engine's analyzer rejects (it falls back to the interpreter), so the
// growth sweep above measures the interpreter whichever way the flag is
// set. This series uses a key-value SSM whose invariants are exactly the
// shapes the columnar kernels execute natively — full-scan filters, an
// equi hash anti-join and a GROUP BY — replayed to growing log sizes with
// trimming off, interpreted vs vectorized over the identical byte stream.

class KvModule : public core::ServiceModule {
 public:
  std::string name() const override { return "kv"; }
  std::vector<std::string> Schema() const override {
    return {"CREATE TABLE puts(time, k, v, sz)", "CREATE TABLE gets(time, k, v)"};
  }
  std::vector<core::Invariant> Invariants() const override {
    return {
        // Soundness: every logged read returned a (key, value) some write
        // produced. LEFT JOIN + IS NULL anti-join over the whole log.
        {"kv-soundness",
         "SELECT g.time, g.k, g.v FROM gets g LEFT JOIN puts p "
         "ON g.k = p.k AND g.v = p.v WHERE p.k IS NULL",
         /*monotone=*/false},
        // Size audit: filter-heavy full scan.
        {"kv-size-audit", "SELECT time, k FROM puts WHERE sz > 1000000 OR sz < 0",
         /*monotone=*/false},
        // Churn ceiling: aggregate-heavy GROUP BY + HAVING.
        {"kv-churn",
         "SELECT k, COUNT(*), MAX(time) FROM puts GROUP BY k HAVING COUNT(*) > 100000",
         /*monotone=*/false},
    };
  }
  std::vector<std::string> TrimmingQueries() const override { return {}; }
  void Log(std::string_view request, std::string_view response, int64_t /*time*/,
           std::vector<core::LogTuple>* out) override {
    std::istringstream in{std::string(request)};
    std::string op, k, v, sz;
    in >> op;
    if (op == "PUT" && (in >> k >> v >> sz)) {
      out->push_back(core::LogTuple{
          "puts", {db::Value(k), db::Value(v),
                   db::Value(static_cast<int64_t>(std::strtoll(sz.c_str(), nullptr, 10)))}});
    } else if (op == "GET" && (in >> k)) {
      out->push_back(core::LogTuple{"gets", {db::Value(k), db::Value(std::string(response))}});
    }
  }
};

// ~20% puts, rest gets replaying previously written (key, value) pairs.
// Every `tamper_every`-th pair (0 = never) is a get whose response no put
// ever produced — a permanent kv-soundness violation, so both engines must
// report the identical violating rows on every full re-check.
std::vector<std::pair<std::string, std::string>> MakeKvTrace(int pairs, int tamper_every) {
  std::vector<std::pair<std::string, std::string>> trace;
  std::vector<std::pair<std::string, std::string>> written;
  int version = 0;
  for (int i = 0; i < pairs; ++i) {
    if (written.empty() || i % 5 == 0) {
      std::string k = "k" + std::to_string(i % 32);
      std::string v = "v" + std::to_string(version++);
      trace.emplace_back("PUT " + k + " " + v + " " + std::to_string(100 + i % 900), "OK");
      written.emplace_back(std::move(k), std::move(v));
    } else if (tamper_every > 0 && i % tamper_every == 0) {
      trace.emplace_back("GET k" + std::to_string(i % 32), "evil" + std::to_string(i));
    } else {
      const auto& [k, v] = written[(static_cast<size_t>(i) * 7919) % written.size()];
      trace.emplace_back("GET " + k, v);
    }
  }
  return trace;
}

// Per-checkpoint full-check time as the log grows, interpreted vs
// vectorized. Returns check-round speedup at the largest log size.
double RunVectorizedGrowth(int rounds, int pairs_per_round) {
  const auto trace = MakeKvTrace(rounds * pairs_per_round, 0);
  std::vector<std::array<double, 2>> check_ms(static_cast<size_t>(rounds));
  std::vector<size_t> rows(static_cast<size_t>(rounds));
  for (int c = 0; c < 2; ++c) {
    core::AuditLogOptions log_options;  // memory mode: isolate checking cost
    log_options.counter_options.inject_latency = false;
    core::LoggerOptions logger_options;
    logger_options.check_interval = 0;  // checkpoints drive the checks
    logger_options.async_checking = false;
    logger_options.incremental_checking = false;  // full scans: the kernels' regime
    logger_options.vectorized_checking = (c == 1);
    core::AuditLogger logger(std::make_unique<KvModule>(), log_options, logger_options,
                             crypto::EcdsaPrivateKey::FromSeed(ToBytes("fig6v")));
    if (!logger.Init().ok()) {
      return 0;
    }
    size_t next = 0;
    for (int round = 0; round < rounds; ++round) {
      for (int i = 0; i < pairs_per_round; ++i, ++next) {
        (void)logger.OnPair(trace[next].first, trace[next].second, false);
      }
      int64_t t0 = NowNanos();
      auto report = logger.CheckInvariants();
      int64_t t1 = NowNanos();
      if (!report.ok() || !report->clean()) {
        std::printf("unexpected kv check failure (%s)\n", c == 0 ? "interpreted" : "vectorized");
        return 0;
      }
      check_ms[static_cast<size_t>(round)][static_cast<size_t>(c)] =
          static_cast<double>(t1 - t0) / 1e6;
      rows[static_cast<size_t>(round)] = logger.log().database().TableSize("puts") +
                                         logger.log().database().TableSize("gets");
    }
  }
  std::printf("\n=== Vectorized engine: full check time (ms) vs log size, kv SSM ===\n");
  std::printf("%8s %8s %12s %12s %8s\n", "round", "rows", "interpreted", "vectorized", "speedup");
  for (int round = 0; round < rounds; ++round) {
    const auto& ms = check_ms[static_cast<size_t>(round)];
    std::printf("%8d %8zu %12.2f %12.2f %7.1fx\n", round + 1, rows[static_cast<size_t>(round)],
                ms[0], ms[1], ms[1] > 0 ? ms[0] / ms[1] : 0);
  }
  const auto& last = check_ms.back();
  double speedup = last[1] > 0 ? last[0] / last[1] : 0;
  std::printf("check-round speedup at %zu rows: %.1fx (acceptance floor: 3x)\n", rows.back(),
              speedup);
  return speedup;
}

std::string ViolationFingerprint(const core::CheckReport& report) {
  std::string out;
  for (const auto& violation : report.violations) {
    out += violation.invariant;
    out += '[';
    for (const db::Row& row : violation.rows.rows) {
      for (const db::Value& value : row) {
        out += value.Serialize();
        out += '|';
      }
      out += ';';
    }
    out += ']';
  }
  return out;
}

// Replays one tampered trace through interval-driven checking with the
// vectorized engine on and off: round count, violating rows, entry count
// and the final serialized database must all match.
bool RunVectorizedEquivalence(int pairs) {
  const auto trace = MakeKvTrace(pairs, /*tamper_every=*/17);
  size_t rounds[2] = {0, 0};
  std::string violations[2];
  size_t entries[2] = {0, 0};
  Bytes db_bytes[2];
  for (int c = 0; c < 2; ++c) {
    core::AuditLogOptions log_options;
    log_options.counter_options.inject_latency = false;
    core::LoggerOptions logger_options;
    logger_options.check_interval = 25;
    logger_options.async_checking = false;
    logger_options.incremental_checking = false;
    logger_options.vectorized_checking = (c == 1);
    logger_options.on_report = [&, c](const core::CheckReport& report) {
      ++rounds[c];
      violations[c] += ViolationFingerprint(report);
    };
    core::AuditLogger logger(std::make_unique<KvModule>(), log_options, logger_options,
                             crypto::EcdsaPrivateKey::FromSeed(ToBytes("fig6w")));
    if (!logger.Init().ok()) {
      return false;
    }
    for (const auto& [request, response] : trace) {
      (void)logger.OnPair(request, response, false);
    }
    entries[c] = logger.log().entry_count();
    db_bytes[c] = logger.log().database().Serialize();
  }
  bool identical = rounds[0] == rounds[1] && violations[0] == violations[1] &&
                   entries[0] == entries[1] && db_bytes[0] == db_bytes[1] &&
                   !violations[0].empty();
  std::printf("\n=== Vectorized result equivalence, %d-pair tampered trace ===\n", pairs);
  std::printf("rounds %zu/%zu, violations %s, entries %zu/%zu, db %s -> %s\n", rounds[0],
              rounds[1], violations[0] == violations[1] ? "match" : "MISMATCH", entries[0],
              entries[1], db_bytes[0] == db_bytes[1] ? "match" : "MISMATCH",
              identical ? "IDENTICAL" : "DIVERGED");
  return identical;
}

// Same comparison across the cross-shard merged check: two shard sets fed
// identical traffic, CheckCrossShard with the flag on vs off.
bool RunVectorizedCrossShardEquivalence(int pairs) {
  const auto trace = MakeKvTrace(pairs, /*tamper_every=*/13);
  std::string violations[2];
  size_t entries[2] = {0, 0};
  for (int c = 0; c < 2; ++c) {
    core::ShardSetOptions options;
    options.shards = 2;
    options.libseal.enclave.inject_costs = false;
    options.libseal.use_async_calls = false;
    options.libseal.logger.check_interval = 0;
    options.libseal.logger.vectorized_checking = (c == 1);
    options.libseal.audit_log.counter_options.inject_latency = false;
    options.epoch_counter.inject_latency = false;
    core::ShardSet set(options, [] { return std::make_unique<KvModule>(); });
    if (!set.Init().ok()) {
      return false;
    }
    uint64_t conn = 0;
    for (const auto& [request, response] : trace) {
      (void)set.OnPair(conn++, request, response, false);
    }
    if (!set.AnchorEpoch().ok()) {
      return false;
    }
    auto cross = set.CheckCrossShard();
    if (!cross.ok()) {
      return false;
    }
    violations[c] = ViolationFingerprint(cross->report);
    entries[c] = cross->merged_entries;
    set.Shutdown();
  }
  bool identical =
      violations[0] == violations[1] && entries[0] == entries[1] && !violations[0].empty();
  std::printf("cross-shard: violations %s, merged entries %zu/%zu -> %s\n",
              violations[0] == violations[1] ? "match" : "MISMATCH", entries[0], entries[1],
              identical ? "IDENTICAL" : "DIVERGED");
  return identical;
}

// --- Async checking: append-stall p99 and result equivalence --------------
//
// The off-critical-path claim: with asynchronous checking the drain step
// only enqueues a trigger, so an OnPair that lands on a check boundary no
// longer pays the whole check+trim round. We measure per-pair OnPair
// latency with 4 appender threads at check_interval=25 and compare the p99
// between synchronous (inline round under the drain lock) and asynchronous
// checking at 1/2/4-way intra-round parallelism. Acceptance: >= 5x p99
// improvement, with bit-identical check results on a single-thread trace.

struct StallResult {
  double p50_ns = 0;
  double p99_ns = 0;
  double max_ns = 0;
  double pairs_per_sec = 0;
};

StallResult MeasureAppendStall(bool async, size_t parallelism, int threads,
                               int pairs_per_thread) {
  core::AuditLogOptions log_options;  // memory mode: isolate the check stall
  log_options.counter_options.inject_latency = false;
  core::LoggerOptions logger_options;
  logger_options.check_interval = 25;
  logger_options.async_checking = async;
  logger_options.check_parallelism = parallelism;
  core::AuditLogger logger(std::make_unique<ssm::GitModule>(), log_options, logger_options,
                           crypto::EcdsaPrivateKey::FromSeed(ToBytes("fig6s")));
  if (!logger.Init().ok()) {
    return {};
  }

  // Pre-serialised per-thread traffic: pushes with per-thread branches plus
  // interleaved fetches so the advertisements relation gives the invariant
  // queries real work per round.
  std::vector<std::vector<std::pair<std::string, std::string>>> traffic(
      static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    services::GitBackend backend;
    std::string branch = "b" + std::to_string(t);
    for (int i = 0; i < pairs_per_thread; ++i) {
      http::HttpRequest req =
          (i % 3 == 2) ? services::MakeGitFetch("repo")
                       : services::MakeGitPush("repo", {{branch, "c" + std::to_string(i)}});
      traffic[static_cast<size_t>(t)].emplace_back(req.Serialize(),
                                                   backend.Handle(req).Serialize());
    }
  }

  std::vector<std::vector<int64_t>> latencies(static_cast<size_t>(threads));
  int64_t start = NowNanos();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& lat = latencies[static_cast<size_t>(t)];
      lat.reserve(static_cast<size_t>(pairs_per_thread));
      for (const auto& [request, response] : traffic[static_cast<size_t>(t)]) {
        int64_t t0 = NowNanos();
        (void)logger.OnPair(static_cast<uint64_t>(t), request, response, false);
        lat.push_back(NowNanos() - t0);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  int64_t elapsed = NowNanos() - start;
  logger.WaitForChecks();

  std::vector<int64_t> all;
  for (const auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  StallResult result;
  if (all.empty()) {
    return result;
  }
  result.p50_ns = static_cast<double>(all[all.size() / 2]);
  result.p99_ns = static_cast<double>(all[std::min(all.size() - 1, all.size() * 99 / 100)]);
  result.max_ns = static_cast<double>(all.back());
  result.pairs_per_sec = static_cast<double>(all.size()) /
                         (static_cast<double>(elapsed) / 1e9);
  return result;
}

// Replays one trace through both checking modes and compares everything
// deterministic: per-round violations and covered watermarks, the final
// serialized database and the entry count. (The chain head embeds
// wall-clock stamps, so it can never match across two runs — even two
// synchronous ones.) The async run quiesces after every pair so its rounds
// fire at the same horizons as the inline ones — this compares RESULTS,
// not placement.
struct TraceOutcome {
  size_t rounds = 0;
  size_t violations = 0;
  std::vector<int64_t> covered;
  size_t entries = 0;
  Bytes db_bytes;
};

TraceOutcome ReplayTrace(const std::vector<std::pair<std::string, std::string>>& trace,
                         bool async) {
  TraceOutcome outcome;
  core::AuditLogOptions log_options;
  log_options.counter_options.inject_latency = false;
  core::LoggerOptions logger_options;
  logger_options.check_interval = 25;
  logger_options.async_checking = async;
  logger_options.on_report = [&outcome](const core::CheckReport& report) {
    ++outcome.rounds;
    outcome.violations += report.violations.size();
    outcome.covered.push_back(report.covered_time);
  };
  core::AuditLogger logger(std::make_unique<ssm::GitModule>(), log_options, logger_options,
                           crypto::EcdsaPrivateKey::FromSeed(ToBytes("fig6e")));
  if (!logger.Init().ok()) {
    return outcome;
  }
  for (const auto& [request, response] : trace) {
    (void)logger.OnPair(request, response, false);
    if (async) {
      logger.WaitForChecks();
    }
  }
  logger.WaitForChecks();
  outcome.entries = logger.log().entry_count();
  outcome.db_bytes = logger.log().database().Serialize();
  return outcome;
}

bool RunResultsEquivalence(int pairs) {
  std::vector<std::pair<std::string, std::string>> trace;
  services::GitBackend backend;
  for (int i = 0; i < pairs; ++i) {
    http::HttpRequest req =
        (i % 4 == 3) ? services::MakeGitFetch("repo")
                     : services::MakeGitPush("repo", {{"b" + std::to_string(i % 3),
                                                       "c" + std::to_string(i)}});
    trace.emplace_back(req.Serialize(), backend.Handle(req).Serialize());
  }
  TraceOutcome sync_outcome = ReplayTrace(trace, /*async=*/false);
  TraceOutcome async_outcome = ReplayTrace(trace, /*async=*/true);
  bool identical = sync_outcome.rounds == async_outcome.rounds &&
                   sync_outcome.violations == async_outcome.violations &&
                   sync_outcome.covered == async_outcome.covered &&
                   sync_outcome.entries == async_outcome.entries &&
                   sync_outcome.db_bytes == async_outcome.db_bytes;
  std::printf("\n=== Result equivalence, sync vs async, %d-pair trace ===\n", pairs);
  std::printf("rounds %zu/%zu, violations %zu/%zu, entries %zu/%zu, "
              "db %s (%zu bytes) -> %s\n",
              sync_outcome.rounds, async_outcome.rounds, sync_outcome.violations,
              async_outcome.violations, sync_outcome.entries, async_outcome.entries,
              sync_outcome.db_bytes == async_outcome.db_bytes ? "match" : "MISMATCH",
              sync_outcome.db_bytes.size(), identical ? "IDENTICAL" : "DIVERGED");
  return identical;
}

}  // namespace
}  // namespace seal::bench

int main(int argc, char** argv) {
  using namespace seal::bench;
  using seal::http::HttpRequest;

  bool quick = false;
  std::string out_path = "BENCH_checking.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const int sweep_requests = quick ? 150 : 450;
  // The stall race deliberately lets the checker fall behind the appenders,
  // so the deferred round at WaitForChecks() evaluates the whole backlog in
  // one go. The git completeness invariant joins advertisements x updates on
  // a time inequality — O(n^2) join rows with a correlated MAX subquery per
  // row — so the race length has to stay bounded for the quiesce to finish
  // on small machines. The p99 series is collected during the race and is
  // unaffected; 4x600 pairs gives ~2400 samples per mode.
  const int stall_pairs_per_thread = quick ? 400 : 600;
  const int equivalence_pairs = quick ? 120 : 400;

  std::printf("=== Figure 6: normalized check+trim time (us/request) vs interval ===\n");
  std::printf("%-10s", "interval");
  for (int interval : {5, 10, 25, 50, 75, 100, 150}) {
    std::printf(" %8d", interval);
  }
  std::printf("\n");

  RunService(
      "git", [] { return std::make_unique<seal::ssm::GitModule>(); },
      [] {
        auto backend = std::make_shared<seal::services::GitBackend>();
        auto workload = std::make_shared<seal::services::GitWorkload>("repo", 3, 1);
        return [backend, workload]() {
          HttpRequest req = workload->Next();
          return std::make_pair(req.Serialize(), backend->Handle(req).Serialize());
        };
      },
      sweep_requests);
  RunService(
      "owncloud", [] { return std::make_unique<seal::ssm::OwnCloudModule>(); },
      [] {
        auto service = std::make_shared<seal::services::OwnCloudService>();
        auto workload = std::make_shared<seal::services::OwnCloudWorkload>(4, 8, 1);
        return [service, workload]() {
          HttpRequest req = workload->Next();
          return std::make_pair(req.Serialize(), service->Handle(req).Serialize());
        };
      },
      sweep_requests);
  RunService(
      "dropbox", [] { return std::make_unique<seal::ssm::DropboxModule>(); },
      [] {
        // Bounded account (10 files churning) so the list relation stays
        // proportional to live state, as in the paper's benchmark.
        auto service = std::make_shared<seal::services::DropboxService>();
        auto counter = std::make_shared<int>(0);
        return [service, counter]() {
          int i = (*counter)++;
          HttpRequest req =
              (i % 4 == 3)
                  ? seal::services::MakeListRequest("acct")
                  : seal::services::MakeCommitBatch(
                        "acct", "h",
                        {seal::services::DropboxCommit{
                            "file-" + std::to_string(i % 10),
                            "bl-" + std::to_string(i), 4 << 20}});
          return std::make_pair(req.Serialize(), service->Handle(req).Serialize());
        };
      },
      sweep_requests);

  std::printf("\npaper: U-shaped curves with optima at 25 (Git), 75 (ownCloud), 100 (Dropbox)\n");

  if (!quick) {
    RunLogGrowth();
  }

  // --- vectorized columnar engine vs the interpreter ---
  double vec_speedup = RunVectorizedGrowth(quick ? 6 : 10, quick ? 250 : 500);
  bool vec_identical = RunVectorizedEquivalence(quick ? 150 : 300);
  bool vec_crossshard_identical = RunVectorizedCrossShardEquivalence(quick ? 120 : 240);

  // --- off-critical-path checking: p99 append stall, sync vs async ---
  constexpr int kStallThreads = 4;
  std::printf("\n=== OnPair latency under checking, %d appender threads, interval 25 ===\n",
              kStallThreads);
  std::printf("%-14s %12s %12s %12s %12s\n", "mode", "p50 ns", "p99 ns", "max ns", "pairs/s");
  StallResult sync_stall =
      MeasureAppendStall(/*async=*/false, 1, kStallThreads, stall_pairs_per_thread);
  std::printf("%-14s %12.0f %12.0f %12.0f %12.0f\n", "sync", sync_stall.p50_ns,
              sync_stall.p99_ns, sync_stall.max_ns, sync_stall.pairs_per_sec);
  StallResult async_stall[3];
  const size_t kParallelism[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    async_stall[i] =
        MeasureAppendStall(/*async=*/true, kParallelism[i], kStallThreads,
                           stall_pairs_per_thread);
    std::printf("async par=%-4zu %12.0f %12.0f %12.0f %12.0f\n", kParallelism[i],
                async_stall[i].p50_ns, async_stall[i].p99_ns, async_stall[i].max_ns,
                async_stall[i].pairs_per_sec);
  }
  double p99_improvement =
      async_stall[0].p99_ns > 0 ? sync_stall.p99_ns / async_stall[0].p99_ns : 0;
  std::printf("p99 append-stall improvement (async par=1): %.1fx (acceptance floor: 5x)\n",
              p99_improvement);

  bool identical = RunResultsEquivalence(equivalence_pairs);

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"checking\",\n"
                 "  \"check_interval\": 25,\n"
                 "  \"appender_threads\": %d,\n"
                 "  \"p99_onpair_ns_sync\": %.1f,\n"
                 "  \"p50_onpair_ns_sync\": %.1f,\n"
                 "  \"p99_onpair_ns_async\": [%.1f, %.1f, %.1f],\n"
                 "  \"p50_onpair_ns_async\": [%.1f, %.1f, %.1f],\n"
                 "  \"async_parallelism\": [1, 2, 4],\n"
                 "  \"pairs_per_sec_sync\": %.1f,\n"
                 "  \"pairs_per_sec_async\": [%.1f, %.1f, %.1f],\n"
                 "  \"p99_stall_improvement\": %.2f,\n"
                 "  \"results_identical\": %s,\n"
                 "  \"vectorized_check_speedup\": %.2f,\n"
                 "  \"vectorized_results_identical\": %s,\n"
                 "  \"vectorized_crossshard_identical\": %s,\n"
                 "  \"quick\": %s\n"
                 "}\n",
                 kStallThreads, sync_stall.p99_ns, sync_stall.p50_ns, async_stall[0].p99_ns,
                 async_stall[1].p99_ns, async_stall[2].p99_ns, async_stall[0].p50_ns,
                 async_stall[1].p50_ns, async_stall[2].p50_ns, sync_stall.pairs_per_sec,
                 async_stall[0].pairs_per_sec, async_stall[1].pairs_per_sec,
                 async_stall[2].pairs_per_sec, p99_improvement,
                 identical ? "true" : "false", vec_speedup,
                 vec_identical ? "true" : "false",
                 vec_crossshard_identical ? "true" : "false", quick ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  PrintMetricsSnapshot("bench_fig6_checking (cumulative)");
  return (identical && vec_identical && vec_crossshard_identical && p99_improvement >= 5.0) ? 0
                                                                                           : 1;
}
