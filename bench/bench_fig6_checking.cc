// Figure 6: normalized invariant-checking + trimming time against the
// checking interval, for all three services.
//
// Checking rarely means each check is expensive (the log has grown);
// checking often wastes fixed per-check cost. Normalising the combined
// check+trim time by the interval length exposes an optimal interval.
// Paper optima: 25 requests (Git), 75 (ownCloud), 100 (Dropbox), with
// absolute check+trim costs of 0.3-0.4 ms at those optima (on SQLite; our
// interpreter is slower in absolute terms, so our optima shift right --
// the curve SHAPE is the reproduced result).
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "src/services/dropbox_service.h"
#include "src/services/git_service.h"
#include "src/services/owncloud_service.h"
#include "src/ssm/dropbox_ssm.h"
#include "src/ssm/git_ssm.h"
#include "src/ssm/owncloud_ssm.h"

namespace seal::bench {
namespace {

using PairSource = std::function<std::pair<std::string, std::string>()>;

// Measures normalized check+trim cost (µs per request) at a given interval.
double MeasureNormalizedCost(const std::function<std::unique_ptr<core::ServiceModule>()>& module,
                             const PairSource& next_pair, int interval, int total_requests) {
  core::AuditLogOptions log_options;
  // Disk mode, as deployed: each trim rewrites the persisted log, re-signs
  // the chain head and runs a counter round -- the FIXED per-check cost
  // that makes checking too often expensive (the left arm of the U).
  log_options.mode = core::PersistenceMode::kDisk;
  log_options.path = TempPath("fig6_" + std::string(1, 'a' + interval % 26) + ".log");
  log_options.counter_options.inject_latency = true;
  log_options.counter_options.network_rtt_nanos = 200'000;
  core::LoggerOptions logger_options;
  logger_options.check_interval = static_cast<size_t>(interval);
  core::AuditLogger logger(module(), log_options, logger_options,
                           crypto::EcdsaPrivateKey::FromSeed(ToBytes("fig6")));
  if (!logger.Init().ok()) {
    return 0;
  }
  int64_t check_trim_nanos = 0;
  for (int i = 0; i < total_requests; ++i) {
    auto [request, response] = next_pair();
    auto report = logger.OnPair(request, response, false);
    if (report.ok() && report->has_value()) {
      check_trim_nanos += (*report)->check_nanos + (*report)->trim_nanos;
    }
  }
  return static_cast<double>(check_trim_nanos) / 1e3 / static_cast<double>(total_requests);
}

void RunService(const char* name,
                const std::function<std::unique_ptr<core::ServiceModule>()>& module,
                const std::function<PairSource()>& make_source) {
  std::printf("%-10s", name);
  for (int interval : {5, 10, 25, 50, 75, 100, 150}) {
    PairSource source = make_source();
    double cost = MeasureNormalizedCost(module, source, interval, 450);
    std::printf(" %8.1f", cost);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  using seal::http::HttpRequest;
  std::printf("=== Figure 6: normalized check+trim time (us/request) vs interval ===\n");
  std::printf("%-10s", "interval");
  for (int interval : {5, 10, 25, 50, 75, 100, 150}) {
    std::printf(" %8d", interval);
  }
  std::printf("\n");

  RunService(
      "git", [] { return std::make_unique<seal::ssm::GitModule>(); },
      [] {
        auto backend = std::make_shared<seal::services::GitBackend>();
        auto workload = std::make_shared<seal::services::GitWorkload>("repo", 3, 1);
        return [backend, workload]() {
          HttpRequest req = workload->Next();
          return std::make_pair(req.Serialize(), backend->Handle(req).Serialize());
        };
      });
  RunService(
      "owncloud", [] { return std::make_unique<seal::ssm::OwnCloudModule>(); },
      [] {
        auto service = std::make_shared<seal::services::OwnCloudService>();
        auto workload = std::make_shared<seal::services::OwnCloudWorkload>(4, 8, 1);
        return [service, workload]() {
          HttpRequest req = workload->Next();
          return std::make_pair(req.Serialize(), service->Handle(req).Serialize());
        };
      });
  RunService(
      "dropbox", [] { return std::make_unique<seal::ssm::DropboxModule>(); },
      [] {
        // Bounded account (10 files churning) so the list relation stays
        // proportional to live state, as in the paper's benchmark.
        auto service = std::make_shared<seal::services::DropboxService>();
        auto counter = std::make_shared<int>(0);
        return [service, counter]() {
          int i = (*counter)++;
          HttpRequest req =
              (i % 4 == 3)
                  ? seal::services::MakeListRequest("acct")
                  : seal::services::MakeCommitBatch(
                        "acct", "h",
                        {seal::services::DropboxCommit{
                            "file-" + std::to_string(i % 10),
                            "bl-" + std::to_string(i), 4 << 20}});
          return std::make_pair(req.Serialize(), service->Handle(req).Serialize());
        };
      });

  std::printf("\npaper: U-shaped curves with optima at 25 (Git), 75 (ownCloud), 100 (Dropbox)\n");
  return 0;
}
