// Figure 6: normalized invariant-checking + trimming time against the
// checking interval, for all three services.
//
// Checking rarely means each check is expensive (the log has grown);
// checking often wastes fixed per-check cost. Normalising the combined
// check+trim time by the interval length exposes an optimal interval.
// Paper optima: 25 requests (Git), 75 (ownCloud), 100 (Dropbox), with
// absolute check+trim costs of 0.3-0.4 ms at those optima (on SQLite; our
// interpreter is slower in absolute terms, so our optima shift right --
// the curve SHAPE is the reproduced result).
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/services/dropbox_service.h"
#include "src/services/git_service.h"
#include "src/services/owncloud_service.h"
#include "src/ssm/dropbox_ssm.h"
#include "src/ssm/git_ssm.h"
#include "src/ssm/owncloud_ssm.h"

namespace seal::bench {
namespace {

using PairSource = std::function<std::pair<std::string, std::string>()>;

// Measures normalized check+trim cost (µs per request) at a given interval.
double MeasureNormalizedCost(const std::function<std::unique_ptr<core::ServiceModule>()>& module,
                             const PairSource& next_pair, int interval, int total_requests) {
  core::AuditLogOptions log_options;
  // Disk mode, as deployed: each trim rewrites the persisted log, re-signs
  // the chain head and runs a counter round -- the FIXED per-check cost
  // that makes checking too often expensive (the left arm of the U).
  log_options.mode = core::PersistenceMode::kDisk;
  log_options.path = TempPath("fig6_" + std::string(1, 'a' + interval % 26) + ".log");
  log_options.counter_options.inject_latency = true;
  log_options.counter_options.network_rtt_nanos = 200'000;
  core::LoggerOptions logger_options;
  logger_options.check_interval = static_cast<size_t>(interval);
  core::AuditLogger logger(module(), log_options, logger_options,
                           crypto::EcdsaPrivateKey::FromSeed(ToBytes("fig6")));
  if (!logger.Init().ok()) {
    return 0;
  }
  int64_t check_trim_nanos = 0;
  for (int i = 0; i < total_requests; ++i) {
    auto [request, response] = next_pair();
    auto report = logger.OnPair(request, response, false);
    if (report.ok() && report->has_value()) {
      check_trim_nanos += (*report)->check_nanos + (*report)->trim_nanos;
    }
  }
  return static_cast<double>(check_trim_nanos) / 1e3 / static_cast<double>(total_requests);
}

void RunService(const char* name,
                const std::function<std::unique_ptr<core::ServiceModule>()>& module,
                const std::function<PairSource()>& make_source) {
  std::printf("%-10s", name);
  for (int interval : {5, 10, 25, 50, 75, 100, 150}) {
    PairSource source = make_source();
    double cost = MeasureNormalizedCost(module, source, interval, 450);
    std::printf(" %8.1f", cost);
  }
  std::printf("\n");
}

// --- Log-size sweep: what the indexes and incremental checking buy --------
//
// A fetch-heavy Git workload (advertisements dominate, so the log grows
// fast) with NO trimming, checked at fixed checkpoints as the log grows
// 10x. Three engine configurations over the identical byte stream:
//   seed        -- nested-loop joins, full scans, full re-check (the engine
//                  before this optimisation round)
//   indexed     -- time index + hash joins, still full re-check
//   incremental -- indexed + per-invariant watermarks
// Per-checkpoint check time should explode for seed, grow roughly linearly
// for indexed, and stay flat for incremental.

struct GrowthSample {
  size_t rows = 0;
  double check_ms[3] = {0, 0, 0};  // seed, indexed, incremental
};

void RunLogGrowth() {
  constexpr int kRepos = 4;
  constexpr int kBranches = 3;
  constexpr int kRounds = 12;
  constexpr int kPairsPerRound = 60;  // fetches: read traffic dominates
  constexpr int kWarmupPushes = 8;    // update churn, before measurement

  // Pre-serialise the whole workload once so every configuration replays
  // identical bytes.
  std::vector<std::pair<std::string, std::string>> pairs;
  {
    services::GitBackend backend;
    auto record = [&](const http::HttpRequest& req) {
      pairs.emplace_back(req.Serialize(), backend.Handle(req).Serialize());
    };
    for (int r = 0; r < kRepos; ++r) {  // seed every branch
      std::map<std::string, std::string> updates;
      for (int b = 0; b < kBranches; ++b) {
        updates["b" + std::to_string(b)] = "c0";
      }
      record(services::MakeGitPush("repo" + std::to_string(r), updates));
    }
    for (int i = 0; i < kWarmupPushes; ++i) {  // branch churn, unmeasured
      record(services::MakeGitPush("repo" + std::to_string(i % kRepos),
                                   {{"b" + std::to_string(i % kBranches),
                                     "c" + std::to_string(i + 1)}}));
    }
    for (int i = 0; i < kRounds * kPairsPerRound; ++i) {
      record(services::MakeGitFetch("repo" + std::to_string(i % kRepos)));
    }
  }

  const struct {
    const char* name;
    db::Tuning tuning;
    bool incremental;
  } kConfigs[3] = {
      {"seed", {.use_time_index = false, .use_hash_join = false}, false},
      {"indexed", {.use_time_index = true, .use_hash_join = true}, false},
      {"incremental", {.use_time_index = true, .use_hash_join = true}, true},
  };

  std::vector<GrowthSample> samples(kRounds);
  for (int c = 0; c < 3; ++c) {
    core::AuditLogOptions log_options;  // memory mode: isolate checking cost
    log_options.counter_options.inject_latency = false;
    core::LoggerOptions logger_options;
    logger_options.check_interval = 0;  // checkpoints drive the checks
    logger_options.incremental_checking = kConfigs[c].incremental;
    core::AuditLogger logger(std::make_unique<ssm::GitModule>(), log_options, logger_options,
                             crypto::EcdsaPrivateKey::FromSeed(ToBytes("fig6g")));
    if (!logger.Init().ok()) {
      return;
    }
    logger.log().database().set_tuning(kConfigs[c].tuning);
    size_t next = 0;
    for (int r = 0; r < kRepos + kWarmupPushes; ++r) {  // pushes, unmeasured
      (void)logger.OnPair(pairs[next].first, pairs[next].second, false);
      ++next;
    }
    // Bootstrap check on the tiny seeded log so the incremental
    // configuration enters round 1 with live watermarks; every measured
    // round is then steady-state.
    (void)logger.CheckInvariants();
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kPairsPerRound; ++i, ++next) {
        (void)logger.OnPair(pairs[next].first, pairs[next].second, false);
      }
      int64_t t0 = NowNanos();
      auto report = logger.CheckInvariants();
      int64_t t1 = NowNanos();
      if (!report.ok() || !report->clean()) {
        std::printf("unexpected check failure (%s)\n", kConfigs[c].name);
        return;
      }
      samples[static_cast<size_t>(round)].check_ms[c] = static_cast<double>(t1 - t0) / 1e6;
      samples[static_cast<size_t>(round)].rows =
          logger.log().database().TableSize("advertisements") +
          logger.log().database().TableSize("updates");
    }
  }

  std::printf("\n=== Log-size sweep: full check time (ms) vs log size, no trimming ===\n");
  std::printf("%8s %8s %10s %10s %12s\n", "round", "rows", "seed", "indexed", "incremental");
  for (int round = 0; round < kRounds; ++round) {
    const GrowthSample& s = samples[static_cast<size_t>(round)];
    std::printf("%8d %8zu %10.2f %10.2f %12.3f\n", round + 1, s.rows, s.check_ms[0],
                s.check_ms[1], s.check_ms[2]);
  }
  const GrowthSample& first = samples.front();
  const GrowthSample& last = samples.back();
  std::printf("\nat %zu rows: indexes alone %.1fx faster than seed; "
              "incremental round cost %.2fx its first round (flat = 1x)\n",
              last.rows, last.check_ms[0] / last.check_ms[1],
              last.check_ms[2] / first.check_ms[2]);
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  using seal::http::HttpRequest;
  std::printf("=== Figure 6: normalized check+trim time (us/request) vs interval ===\n");
  std::printf("%-10s", "interval");
  for (int interval : {5, 10, 25, 50, 75, 100, 150}) {
    std::printf(" %8d", interval);
  }
  std::printf("\n");

  RunService(
      "git", [] { return std::make_unique<seal::ssm::GitModule>(); },
      [] {
        auto backend = std::make_shared<seal::services::GitBackend>();
        auto workload = std::make_shared<seal::services::GitWorkload>("repo", 3, 1);
        return [backend, workload]() {
          HttpRequest req = workload->Next();
          return std::make_pair(req.Serialize(), backend->Handle(req).Serialize());
        };
      });
  RunService(
      "owncloud", [] { return std::make_unique<seal::ssm::OwnCloudModule>(); },
      [] {
        auto service = std::make_shared<seal::services::OwnCloudService>();
        auto workload = std::make_shared<seal::services::OwnCloudWorkload>(4, 8, 1);
        return [service, workload]() {
          HttpRequest req = workload->Next();
          return std::make_pair(req.Serialize(), service->Handle(req).Serialize());
        };
      });
  RunService(
      "dropbox", [] { return std::make_unique<seal::ssm::DropboxModule>(); },
      [] {
        // Bounded account (10 files churning) so the list relation stays
        // proportional to live state, as in the paper's benchmark.
        auto service = std::make_shared<seal::services::DropboxService>();
        auto counter = std::make_shared<int>(0);
        return [service, counter]() {
          int i = (*counter)++;
          HttpRequest req =
              (i % 4 == 3)
                  ? seal::services::MakeListRequest("acct")
                  : seal::services::MakeCommitBatch(
                        "acct", "h",
                        {seal::services::DropboxCommit{
                            "file-" + std::to_string(i % 10),
                            "bl-" + std::to_string(i), 4 << 20}});
          return std::make_pair(req.Serialize(), service->Handle(req).Serialize());
        };
      });

  std::printf("\npaper: U-shaped curves with optima at 25 (Git), 75 (ownCloud), 100 (Dropbox)\n");

  RunLogGrowth();
  PrintMetricsSnapshot("bench_fig6_checking (cumulative)");
  return 0;
}
