#include <gtest/gtest.h>

#include "src/http/http.h"

namespace seal::http {
namespace {

TEST(Http, ParseRequestBasic) {
  auto req = ParseRequest(
      "GET /repo/info/refs?service=git-upload-pack HTTP/1.1\r\n"
      "Host: git.example\r\n"
      "Libseal-Check: git\r\n"
      "\r\n");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/repo/info/refs?service=git-upload-pack");
  EXPECT_EQ(req->version, "HTTP/1.1");
  ASSERT_NE(req->GetHeader("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*req->GetHeader("HOST"), "git.example");
  EXPECT_EQ(*req->GetHeader("Libseal-Check"), "git");
  EXPECT_TRUE(req->body.empty());
}

TEST(Http, ParseRequestWithBody) {
  auto req = ParseRequest(
      "POST /upload HTTP/1.1\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->body, "hello");
}

TEST(Http, ParseRequestErrors) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("GET\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("GET /x HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n").ok());
}

TEST(Http, ParseResponseBasic) {
  auto rsp = ParseResponse(
      "HTTP/1.1 404 Not Found\r\n"
      "Content-Length: 0\r\n"
      "\r\n");
  ASSERT_TRUE(rsp.ok());
  EXPECT_EQ(rsp->status, 404);
  EXPECT_EQ(rsp->reason, "Not Found");
}

TEST(Http, ParseResponseErrors) {
  EXPECT_FALSE(ParseResponse("").ok());
  EXPECT_FALSE(ParseResponse("HTTP/1.1 banana\r\n\r\n").ok());
}

TEST(Http, SerializeAddsContentLength) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/x";
  req.body = "12345";
  std::string raw = req.Serialize();
  EXPECT_NE(raw.find("Content-Length: 5\r\n"), std::string::npos);
  auto reparsed = ParseRequest(raw);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->body, "12345");
}

TEST(Http, SerializeResponseRoundTrip) {
  HttpResponse rsp;
  rsp.status = 200;
  rsp.reason = "OK";
  rsp.SetHeader("Libseal-Check-Result", "0 violations");
  rsp.body = "content";
  auto reparsed = ParseResponse(rsp.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed->GetHeader("libseal-check-result"), "0 violations");
  EXPECT_EQ(reparsed->body, "content");
}

TEST(Http, SetHeaderReplaces) {
  HttpRequest req;
  req.SetHeader("X-A", "1");
  req.SetHeader("x-a", "2");
  EXPECT_EQ(req.headers.size(), 1u);
  EXPECT_EQ(*req.GetHeader("X-A"), "2");
}

// Simulated socket: feeds the message in fixed-size slices.
class SliceReader {
 public:
  SliceReader(std::string data, size_t slice) : data_(std::move(data)), slice_(slice) {}
  size_t operator()(uint8_t* buf, size_t max) {
    if (pos_ >= data_.size()) {
      return 0;
    }
    size_t take = std::min({max, slice_, data_.size() - pos_});
    std::memcpy(buf, data_.data() + pos_, take);
    pos_ += take;
    return take;
  }

 private:
  std::string data_;
  size_t slice_;
  size_t pos_ = 0;
};

TEST(Http, ReadHttpMessageContentLength) {
  std::string raw =
      "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";
  for (size_t slice : {1u, 3u, 7u, 100u}) {
    SliceReader reader(raw, slice);
    auto msg = ReadHttpMessage([&](uint8_t* b, size_t m) { return reader(b, m); });
    ASSERT_TRUE(msg.ok()) << "slice " << slice;
    EXPECT_EQ(*msg, raw);
  }
}

TEST(Http, ReadHttpMessageNoBody) {
  std::string raw = "GET / HTTP/1.1\r\nHost: h\r\n\r\n";
  SliceReader reader(raw, 5);
  auto msg = ReadHttpMessage([&](uint8_t* b, size_t m) { return reader(b, m); });
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(*msg, raw);
}

TEST(Http, ReadHttpMessageChunked) {
  std::string raw =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
  SliceReader reader(raw, 4);
  auto msg = ReadHttpMessage([&](uint8_t* b, size_t m) { return reader(b, m); });
  ASSERT_TRUE(msg.ok());
  auto rsp = ParseResponse(*msg);
  ASSERT_TRUE(rsp.ok());
  EXPECT_EQ(rsp->body, "hello world");
  EXPECT_EQ(*rsp->GetHeader("Content-Length"), "11");
  EXPECT_EQ(rsp->GetHeader("Transfer-Encoding"), nullptr);
}

TEST(Http, ReadHttpMessageEofBeforeAnything) {
  auto msg = ReadHttpMessage([](uint8_t*, size_t) { return size_t{0}; });
  EXPECT_FALSE(msg.ok());
}

TEST(Http, ReadHttpMessageEofMidBody) {
  std::string raw = "POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort";
  SliceReader reader(raw, 100);
  auto msg = ReadHttpMessage([&](uint8_t* b, size_t m) { return reader(b, m); });
  EXPECT_FALSE(msg.ok());
}

// --- RequestsConnectionClose (RFC 7230 §6.1/§6.3 semantics) ---

HttpRequest RequestWithConnection(const std::string& value, const std::string& version) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/";
  req.version = version;
  if (!value.empty()) {
    req.SetHeader("Connection", value);
  }
  return req;
}

TEST(ConnectionClose, Http11DefaultsToKeepAlive) {
  EXPECT_FALSE(RequestsConnectionClose(RequestWithConnection("", "HTTP/1.1")));
  EXPECT_FALSE(RequestsConnectionClose(RequestWithConnection("keep-alive", "HTTP/1.1")));
}

TEST(ConnectionClose, ExactCloseToken) {
  EXPECT_TRUE(RequestsConnectionClose(RequestWithConnection("close", "HTTP/1.1")));
}

TEST(ConnectionClose, CaseInsensitive) {
  // Pre-fix the server compared against the exact string "close".
  EXPECT_TRUE(RequestsConnectionClose(RequestWithConnection("Close", "HTTP/1.1")));
  EXPECT_TRUE(RequestsConnectionClose(RequestWithConnection("CLOSE", "HTTP/1.1")));
}

TEST(ConnectionClose, TokenListWithWhitespace) {
  EXPECT_TRUE(RequestsConnectionClose(RequestWithConnection("keep-alive, close", "HTTP/1.1")));
  EXPECT_TRUE(RequestsConnectionClose(RequestWithConnection("close , TE", "HTTP/1.1")));
  EXPECT_TRUE(RequestsConnectionClose(RequestWithConnection("TE,close", "HTTP/1.1")));
}

TEST(ConnectionClose, SubstringIsNotAToken) {
  // "close" must match a whole comma-separated token, not a substring.
  EXPECT_FALSE(RequestsConnectionClose(RequestWithConnection("closed", "HTTP/1.1")));
  EXPECT_FALSE(RequestsConnectionClose(RequestWithConnection("x-close-hint", "HTTP/1.1")));
}

TEST(ConnectionClose, Http10ClosesByDefault) {
  EXPECT_TRUE(RequestsConnectionClose(RequestWithConnection("", "HTTP/1.0")));
  EXPECT_TRUE(RequestsConnectionClose(RequestWithConnection("close", "HTTP/1.0")));
}

TEST(ConnectionClose, Http10KeepAliveOptIn) {
  EXPECT_FALSE(RequestsConnectionClose(RequestWithConnection("keep-alive", "HTTP/1.0")));
  EXPECT_FALSE(RequestsConnectionClose(RequestWithConnection("Keep-Alive", "HTTP/1.0")));
  // close still wins over an accompanying keep-alive.
  EXPECT_TRUE(RequestsConnectionClose(RequestWithConnection("keep-alive, close", "HTTP/1.0")));
}

}  // namespace
}  // namespace seal::http
