// Tests for the asynchronous invariant-checking engine: forced-check
// rendezvous + coalescing, the forced-budget charge, report contents, and
// a TSan-targeted stress of appenders racing async rounds and trims.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/checker.h"
#include "src/core/logger.h"
#include "src/obs/obs.h"
#include "src/services/git_service.h"
#include "src/ssm/git_ssm.h"

namespace seal::core {
namespace {

std::unique_ptr<AuditLogger> MakeLogger(LoggerOptions logger_options,
                                        PersistenceMode mode = PersistenceMode::kMemory,
                                        const std::string& path = "") {
  AuditLogOptions log_options;
  log_options.mode = mode;
  log_options.path = path;
  log_options.counter_options.inject_latency = false;
  auto logger = std::make_unique<AuditLogger>(std::make_unique<ssm::GitModule>(), log_options,
                                              logger_options,
                                              crypto::EcdsaPrivateKey::FromSeed(ToBytes("ck")));
  EXPECT_TRUE(logger->Init().ok());
  return logger;
}

Result<std::optional<CheckReport>> PumpPush(AuditLogger& logger, services::GitBackend& backend,
                                            uint64_t conn, int commit, bool force = false) {
  auto req = services::MakeGitPush("r", {{"b" + std::to_string(conn), "c" + std::to_string(commit)}});
  auto rsp = backend.Handle(req);
  return logger.OnPair(conn, req.Serialize(), rsp.Serialize(), force);
}

TEST(Checker, ForcedCheckRendezvousReportContents) {
  auto logger = MakeLogger({.check_interval = 0});
  services::GitBackend backend;
  ASSERT_TRUE(PumpPush(*logger, backend, 0, 1).ok());
  auto r = PumpPush(*logger, backend, 0, 2, /*force=*/true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  const CheckReport& report = **r;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.invariants_checked, logger->checker()->invariant_count());
  EXPECT_GE(report.covered_time, 2);  // the round covers the forcing pair
  ASSERT_EQ(report.coverage.size(), report.invariants_checked);
  for (const auto& c : report.coverage) {
    EXPECT_EQ(c.covered, report.covered_time) << c.invariant;
  }
  EXPECT_EQ(report.Summary(),
            "ok " + std::to_string(report.invariants_checked) + " invariants");
  // The rendezvous also published the report for header fallbacks.
  ASSERT_TRUE(logger->last_report().has_value());
  EXPECT_EQ(logger->last_report()->covered_time, report.covered_time);
}

TEST(Checker, ConcurrentForcedChecksCoalesceIntoOneRound) {
  obs::Registry::Global().Reset();
  auto logger = MakeLogger({.check_interval = 0});
  CheckerEngine* engine = logger->checker();
  ASSERT_NE(engine, nullptr);

  // Hold the checker thread back so every forced pair lands while the
  // round is still pending.
  engine->PauseForTesting(true);
  constexpr int kThreads = 4;
  std::atomic<int> reports{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      services::GitBackend backend;
      auto r = PumpPush(*logger, backend, static_cast<uint64_t>(t), 1, /*force=*/true);
      if (!r.ok() || !r->has_value() || !(*r)->clean()) {
        failures.fetch_add(1);
        return;
      }
      reports.fetch_add(1);
    });
  }
  // All pairs must drain (the sequencer never blocks on the paused round)
  // before we let the round run.
  while (logger->pairs_logged() < kThreads) {
    std::this_thread::yield();
  }
  engine->PauseForTesting(false);
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(reports.load(), kThreads);  // every caller got the shared report
  logger->WaitForChecks();
  EXPECT_EQ(engine->rounds_completed(), 1u);  // ...from ONE evaluation
  auto metrics = obs::Registry::Global().TakeSnapshot();
  EXPECT_EQ(metrics.counter("logger_forced_coalesced_total"),
            static_cast<uint64_t>(kThreads - 1));
  // The coalesced round covers the last drained pair.
  ASSERT_TRUE(logger->last_report().has_value());
  EXPECT_EQ(logger->last_report()->covered_time, kThreads);
}

TEST(Checker, CoalescedForcedChecksChargeTheBudgetOnce) {
  auto logger = MakeLogger({.check_interval = 0, .forced_check_min_gap = 100});
  CheckerEngine* engine = logger->checker();
  engine->PauseForTesting(true);

  constexpr int kThreads = 3;
  std::atomic<int> reports{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      services::GitBackend backend;
      auto r = PumpPush(*logger, backend, static_cast<uint64_t>(t), 1, /*force=*/true);
      if (r.ok() && r->has_value()) {
        reports.fetch_add(1);
      }
    });
  }
  while (logger->pairs_logged() < kThreads) {
    std::this_thread::yield();
  }
  engine->PauseForTesting(false);
  for (auto& th : threads) th.join();

  // One budget charge bought a round that satisfied every concurrent
  // demand: had attaching double-spent, the later threads would have been
  // denied instead.
  EXPECT_EQ(reports.load(), kThreads);
  logger->WaitForChecks();
  EXPECT_EQ(engine->rounds_completed(), 1u);

  // The budget IS spent though: the very next lone demand is denied.
  services::GitBackend backend;
  auto r = PumpPush(*logger, backend, 9, 2, /*force=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

TEST(Checker, ManualCheckGoesThroughTheEngine) {
  auto logger = MakeLogger({.check_interval = 0});
  services::GitBackend backend;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(PumpPush(*logger, backend, 0, i).ok());
  }
  auto report = logger->CheckInvariants();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->covered_time, 5);
  EXPECT_GE(logger->checker()->rounds_completed(), 1u);
}

TEST(Checker, ManualCheckDoesNotBlockAppenders) {
  // Regression: CheckInvariants used to hold the drain mutex for the whole
  // evaluation, freezing every appender. Now it enqueues a round and waits
  // off-lock, so appends flow while the check is pending.
  auto logger = MakeLogger({.check_interval = 0});
  services::GitBackend backend;
  ASSERT_TRUE(PumpPush(*logger, backend, 0, 1).ok());
  logger->checker()->PauseForTesting(true);
  std::thread checking([&] {
    auto report = logger->CheckInvariants();
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
  });
  // With the round stuck pending, appends must still complete.
  for (int i = 2; i <= 10; ++i) {
    ASSERT_TRUE(PumpPush(*logger, backend, 0, i).ok());
  }
  EXPECT_EQ(logger->pairs_logged(), 10);
  logger->checker()->PauseForTesting(false);
  checking.join();
}

TEST(Checker, ParallelEvaluationMatchesSerial) {
  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{4}}) {
    auto logger = MakeLogger({.check_interval = 0, .check_parallelism = parallelism});
    services::GitBackend backend;
    for (int i = 1; i <= 20; ++i) {
      ASSERT_TRUE(PumpPush(*logger, backend, 0, i).ok());
    }
    auto report = logger->CheckInvariants();
    ASSERT_TRUE(report.ok()) << "parallelism=" << parallelism;
    EXPECT_TRUE(report->clean());
    EXPECT_EQ(report->invariants_checked, logger->checker()->invariant_count());
    EXPECT_EQ(report->covered_time, 20);
    // Deterministic assembly: coverage stays in invariant declaration order.
    ASSERT_EQ(report->coverage.size(), report->invariants_checked);
  }
}

TEST(Checker, WatermarksAdvanceAndResetOnTrim) {
  auto logger = MakeLogger({.check_interval = 0, .check_parallelism = 2});
  services::GitBackend backend;
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(PumpPush(*logger, backend, 0, i).ok());
  }
  ASSERT_TRUE(logger->CheckInvariants().ok());
  bool any_monotone = false;
  for (size_t i = 0; i < logger->checker()->invariant_count(); ++i) {
    if (logger->watermark_for_testing(i) >= 0) {
      EXPECT_EQ(logger->watermark_for_testing(i), 4);
      any_monotone = true;
    }
  }
  EXPECT_TRUE(any_monotone);
  ASSERT_TRUE(logger->Trim().ok());  // rows leave -> every watermark resets
  for (size_t i = 0; i < logger->checker()->invariant_count(); ++i) {
    EXPECT_EQ(logger->watermark_for_testing(i), -1);
  }
}

// The TSan target: appenders race interval-triggered async rounds, forced
// rendezvous and an explicit trim on the encrypted disk path. Afterwards
// the persisted chain must verify, the observed reports must be monotone
// in covered time, and per-invariant coverage must tile: every interval
// starts where the previous clean one ended, or restarts from the full
// log after a trim (never a gap, never an un-reset overlap).
TEST(Checker, StressAppendersVsAsyncChecksAndTrim) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  std::string path = std::string(::testing::TempDir()) + "/checker_stress.log";
  AuditLogOptions log_options;
  log_options.mode = PersistenceMode::kDisk;
  log_options.path = path;
  log_options.encryption_key = FromHex("000102030405060708090a0b0c0d0e0f");
  log_options.counter_options.inject_latency = false;

  std::mutex report_mutex;
  std::vector<CheckReport> observed;
  LoggerOptions logger_options;
  logger_options.check_interval = 7;
  logger_options.forced_check_min_gap = 25;
  logger_options.check_parallelism = 2;
  logger_options.on_report = [&](const CheckReport& report) {
    std::lock_guard<std::mutex> lock(report_mutex);
    observed.push_back(report);
  };

  crypto::EcdsaPrivateKey key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("stress"));
  AuditLogger logger(std::make_unique<ssm::GitModule>(), log_options, logger_options, key);
  ASSERT_TRUE(logger.Init().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      services::GitBackend backend;
      std::string branch = "t" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        auto req = services::MakeGitPush("r", {{branch, branch + "-c" + std::to_string(i)}});
        auto rsp = backend.Handle(req);
        auto r = logger.OnPair(static_cast<uint64_t>(t), req.Serialize(), rsp.Serialize(),
                               i % 13 == 0);
        if (!r.ok() || (r->has_value() && !(*r)->clean())) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  // A trim races the appenders and the checker mid-run.
  std::thread trimmer([&] {
    while (logger.pairs_logged() < kThreads * kPerThread / 2) {
      std::this_thread::yield();
    }
    if (!logger.Trim().ok()) {
      failures.fetch_add(1);
    }
  });
  for (auto& th : threads) th.join();
  trimmer.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(logger.pairs_logged(), kThreads * kPerThread);

  // Quiesce, then run one final full check so coverage reaches the end.
  logger.WaitForChecks();
  auto final_check = logger.CheckInvariants();
  ASSERT_TRUE(final_check.ok());
  EXPECT_TRUE(final_check->clean());
  EXPECT_EQ(final_check->covered_time, kThreads * kPerThread);

  // The chain head covers everything that survived trimming.
  auto verified = AuditLog::VerifyLogFile(path, key.public_key(), logger.log().counter(),
                                          log_options.encryption_key);
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, logger.log().entry_count());

  // Reports arrive in round order with nondecreasing covered time.
  std::lock_guard<std::mutex> lock(report_mutex);
  ASSERT_GT(observed.size(), 1u);
  int64_t prev_time = 0;
  for (const CheckReport& report : observed) {
    EXPECT_TRUE(report.clean());
    EXPECT_GE(report.covered_time, prev_time);
    prev_time = report.covered_time;
  }
  // Coverage tiling per invariant: each round either resumes exactly at the
  // previous round's covered watermark or rescans from the beginning
  // (floor -1, forced by a trim). Anything else would double- or un-cover
  // a span of pairs.
  std::map<std::string, int64_t> last_covered;
  for (const CheckReport& report : observed) {
    for (const CheckReport::Coverage& c : report.coverage) {
      auto it = last_covered.find(c.invariant);
      if (it != last_covered.end() && c.floor != -1) {
        EXPECT_EQ(c.floor, it->second) << c.invariant;
      }
      EXPECT_GE(c.covered, c.floor == -1 ? int64_t{0} : c.floor) << c.invariant;
      last_covered[c.invariant] = c.covered;
    }
  }
}

}  // namespace
}  // namespace seal::core
