#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/aes.h"
#include "src/crypto/bignum.h"
#include "src/crypto/drbg.h"
#include "src/crypto/ecdsa.h"
#include "src/crypto/gcm.h"
#include "src/crypto/hmac.h"
#include "src/crypto/p256.h"
#include "src/crypto/sha256.h"

namespace seal::crypto {
namespace {

std::string HexDigest(const Sha256Digest& d) { return ToHex(BytesView(d.data(), d.size())); }

// --- SHA-256 (FIPS 180-4 / NIST CAVP vectors) ---

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(HexDigest(Sha256::Hash(std::string_view(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(HexDigest(Sha256::Hash(std::string_view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      HexDigest(Sha256::Hash(std::string_view("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexDigest(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  SplitMix64 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(rng.Below(300));
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.Next());
    }
    Sha256 h;
    size_t off = 0;
    while (off < data.size()) {
      size_t take = std::min<size_t>(data.size() - off, rng.Below(64) + 1);
      h.Update(BytesView(data.data() + off, take));
      off += take;
    }
    EXPECT_EQ(h.Finish(), Sha256::Hash(data));
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding boundaries must all differ and
  // be stable.
  for (size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 121u}) {
    std::string a(n, 'x');
    std::string b(n, 'y');
    EXPECT_NE(Sha256::Hash(a), Sha256::Hash(b)) << n;
    EXPECT_EQ(Sha256::Hash(a), Sha256::Hash(a)) << n;
  }
}

// --- HMAC-SHA256 (RFC 4231) ---

TEST(HmacSha256, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Sha256Digest mac = HmacSha256::Mac(key, ToBytes("Hi There"));
  EXPECT_EQ(HexDigest(mac), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  Sha256Digest mac = HmacSha256::Mac(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(HexDigest(mac), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  Sha256Digest mac = HmacSha256::Mac(key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(HexDigest(mac), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- HKDF (RFC 5869) ---

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = FromHex("000102030405060708090a0b0c");
  Bytes info = FromHex("f0f1f2f3f4f5f6f7f8f9");
  Bytes prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(ToHex(prk), "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes okm = HkdfExpand(prk, info, 42);
  EXPECT_EQ(ToHex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Tls12Prf, DeterministicAndLengthExact) {
  Bytes secret = FromHex("0102030405060708");
  Bytes seed = FromHex("a0a1a2a3");
  Bytes a = Tls12Prf(secret, "key expansion", seed, 104);
  Bytes b = Tls12Prf(secret, "key expansion", seed, 104);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 104u);
  // Different label or seed must give different output.
  EXPECT_NE(Tls12Prf(secret, "master secret", seed, 104), a);
  Bytes seed2 = FromHex("a0a1a2a4");
  EXPECT_NE(Tls12Prf(secret, "key expansion", seed2, 104), a);
}

TEST(Tls12Prf, PrefixConsistency) {
  // A shorter request must be a prefix of a longer one (P_SHA256 streams).
  Bytes secret = FromHex("deadbeef");
  Bytes seed = FromHex("cafe");
  Bytes small = Tls12Prf(secret, "test", seed, 16);
  Bytes big = Tls12Prf(secret, "test", seed, 80);
  EXPECT_TRUE(std::equal(small.begin(), small.end(), big.begin()));
}

// --- AES-128 (FIPS 197) ---

TEST(Aes128, Fips197Vector) {
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(BytesView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, NistEcbVector) {
  // NIST SP 800-38A F.1.1 ECB-AES128.Encrypt, block 1.
  Bytes key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(BytesView(ct, 16)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

// --- AES-128-GCM (NIST GCM spec test cases) ---

TEST(Aes128Gcm, NistCase1EmptyEverything) {
  Bytes key = FromHex("00000000000000000000000000000000");
  Bytes nonce = FromHex("000000000000000000000000");
  Aes128Gcm gcm(key);
  Bytes sealed = gcm.Seal(nonce, {}, {});
  EXPECT_EQ(ToHex(sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(Aes128Gcm, NistCase3) {
  Bytes key = FromHex("feffe9928665731c6d6a8f9467308308");
  Bytes nonce = FromHex("cafebabefacedbaddecaf888");
  Bytes pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  Aes128Gcm gcm(key);
  Bytes sealed = gcm.Seal(nonce, {}, pt);
  EXPECT_EQ(ToHex(sealed),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(Aes128Gcm, NistCase4WithAad) {
  Bytes key = FromHex("feffe9928665731c6d6a8f9467308308");
  Bytes nonce = FromHex("cafebabefacedbaddecaf888");
  Bytes pt = FromHex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  Bytes aad = FromHex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  Aes128Gcm gcm(key);
  Bytes sealed = gcm.Seal(nonce, aad, pt);
  ASSERT_EQ(sealed.size(), pt.size() + kGcmTagSize);
  EXPECT_EQ(ToHex(BytesView(sealed.data() + pt.size(), kGcmTagSize)),
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(Aes128Gcm, RoundTripRandom) {
  SplitMix64 rng(11);
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Aes128Gcm gcm(key);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes nonce(12), pt(rng.Below(200)), aad(rng.Below(40));
    for (auto& b : nonce) b = static_cast<uint8_t>(rng.Next());
    for (auto& b : pt) b = static_cast<uint8_t>(rng.Next());
    for (auto& b : aad) b = static_cast<uint8_t>(rng.Next());
    Bytes sealed = gcm.Seal(nonce, aad, pt);
    auto opened = gcm.Open(nonce, aad, sealed);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, pt);
  }
}

TEST(Aes128Gcm, TamperDetection) {
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Bytes nonce = FromHex("000102030405060708090a0b");
  Aes128Gcm gcm(key);
  Bytes sealed = gcm.Seal(nonce, ToBytes("aad"), ToBytes("secret message"));
  // Flip each byte in turn: every mutation must be rejected.
  for (size_t i = 0; i < sealed.size(); ++i) {
    Bytes mutated = sealed;
    mutated[i] ^= 0x01;
    EXPECT_FALSE(gcm.Open(nonce, ToBytes("aad"), mutated).has_value()) << i;
  }
  // Wrong AAD rejected.
  EXPECT_FALSE(gcm.Open(nonce, ToBytes("axd"), sealed).has_value());
  // Truncated input rejected.
  EXPECT_FALSE(gcm.Open(nonce, ToBytes("aad"), BytesView(sealed.data(), 10)).has_value());
}

TEST(Aes128Gcm, SealIntoMatchesSeal) {
  // Sizes straddling the 4-block unrolled kernel's boundaries: 0..1 block,
  // exactly 64, one over, and well past.
  SplitMix64 rng(12);
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Aes128Gcm gcm(key);
  for (size_t n : {0u, 1u, 15u, 16u, 17u, 48u, 63u, 64u, 65u, 100u, 128u, 200u, 256u, 1000u}) {
    Bytes nonce(12), pt(n), aad(13);
    for (auto& b : nonce) b = static_cast<uint8_t>(rng.Next());
    for (auto& b : pt) b = static_cast<uint8_t>(rng.Next());
    for (auto& b : aad) b = static_cast<uint8_t>(rng.Next());
    Bytes expected = gcm.Seal(nonce, aad, pt);
    Bytes actual(n + kGcmTagSize);
    gcm.SealInto(nonce, aad, pt, actual.data());
    EXPECT_EQ(actual, expected) << "size " << n;

    Bytes opened(n);
    ASSERT_TRUE(gcm.OpenInto(nonce, aad, actual, opened.data())) << "size " << n;
    EXPECT_EQ(opened, pt) << "size " << n;
  }
}

TEST(Aes128Gcm, OpenIntoRejectsTamperingWithoutOutput) {
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Bytes nonce = FromHex("000102030405060708090a0b");
  Aes128Gcm gcm(key);
  Bytes pt = ToBytes("secret message");
  Bytes sealed = gcm.Seal(nonce, {}, pt);
  sealed[3] ^= 0x40;
  Bytes out(pt.size(), 0xAA);
  EXPECT_FALSE(gcm.OpenInto(nonce, {}, sealed, out.data()));
  // Authentication failed before decryption: the buffer is untouched.
  EXPECT_EQ(out, Bytes(pt.size(), 0xAA));
  EXPECT_FALSE(gcm.OpenInto(nonce, {}, BytesView(sealed.data(), 8), out.data()));
}

TEST(Aes128Gcm, CachedContextMatchesFreshContexts) {
  // The audit log keeps one context per key; a context must not accumulate
  // state between messages (byte-identical to building a fresh one each
  // time, the pre-optimisation behaviour).
  SplitMix64 rng(13);
  Bytes key = FromHex("feffe9928665731c6d6a8f9467308308");
  Aes128Gcm cached(key);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes nonce(12), pt(rng.Below(300)), aad(rng.Below(32));
    for (auto& b : nonce) b = static_cast<uint8_t>(rng.Next());
    for (auto& b : pt) b = static_cast<uint8_t>(rng.Next());
    for (auto& b : aad) b = static_cast<uint8_t>(rng.Next());
    Aes128Gcm fresh(key);
    EXPECT_EQ(cached.Seal(nonce, aad, pt), fresh.Seal(nonce, aad, pt)) << trial;
  }
}

TEST(GcmNonceSequence, PrefixPlusCounterLayout) {
  GcmNonceSequence seq(0xAABBCCDDu);
  Bytes first = seq.Next();
  Bytes second = seq.Next();
  EXPECT_EQ(ToHex(first), "aabbccdd0000000000000000");
  EXPECT_EQ(ToHex(second), "aabbccdd0000000000000001");
  EXPECT_EQ(seq.issued(), 2u);
}

TEST(GcmNonceSequence, UniqueAcrossThreads) {
  // 16 threads x 10k nonces off one sequence: every nonce distinct, no
  // locks involved.
  constexpr int kThreads = 16;
  constexpr int kPerThread = 10000;
  GcmNonceSequence seq(0x01020304u);
  std::vector<std::vector<uint64_t>> drawn(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      drawn[t].reserve(kPerThread);
      uint8_t nonce[kGcmNonceSize];
      for (int i = 0; i < kPerThread; ++i) {
        seq.Next(nonce);
        EXPECT_EQ(LoadBe32(nonce), 0x01020304u);
        drawn[t].push_back(LoadBe64(nonce + 4));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<uint64_t> unique;
  for (const auto& v : drawn) unique.insert(v.begin(), v.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(seq.issued(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- Bignum ---

TEST(Bignum, HexRoundTrip) {
  U256 v = U256::FromHexString("00000000000000000000000000000000000000000000000000000000deadbeef");
  EXPECT_EQ(v.limb[0], 0xdeadbeefULL);
  EXPECT_EQ(v.ToHexString(),
            "00000000000000000000000000000000000000000000000000000000deadbeef");
}

TEST(Bignum, AddCarry) {
  U256 max;
  max.limb[0] = max.limb[1] = max.limb[2] = max.limb[3] = ~0ULL;
  uint64_t carry = 0;
  U256 r = Add(max, U256::One(), &carry);
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(carry, 1u);
}

TEST(Bignum, SubBorrow) {
  uint64_t borrow = 0;
  U256 r = Sub(U256::Zero(), U256::One(), &borrow);
  EXPECT_EQ(borrow, 1u);
  EXPECT_EQ(r.limb[0], ~0ULL);
}

TEST(Bignum, MulSmall) {
  U512 p = Mul(U256::FromUint64(0xffffffffffffffffULL), U256::FromUint64(2));
  EXPECT_EQ(p.limb[0], 0xfffffffffffffffeULL);
  EXPECT_EQ(p.limb[1], 1u);
}

TEST(Bignum, ModBasics) {
  U256 m = U256::FromUint64(97);
  EXPECT_EQ(Mod(U256::FromUint64(200), m).limb[0], 200u % 97u);
  EXPECT_EQ(ModMul(U256::FromUint64(10), U256::FromUint64(50), m).limb[0], 500u % 97u);
  EXPECT_EQ(ModAdd(U256::FromUint64(90), U256::FromUint64(20), m).limb[0], 110u % 97u);
  EXPECT_EQ(ModSub(U256::FromUint64(3), U256::FromUint64(10), m).limb[0], 90u);
}

TEST(Bignum, ModExpFermat) {
  // 2^96 mod 97 == 1 (Fermat's little theorem).
  U256 m = U256::FromUint64(97);
  EXPECT_EQ(ModExp(U256::FromUint64(2), U256::FromUint64(96), m).limb[0], 1u);
}

TEST(Bignum, ModInvMatchesFermat) {
  SplitMix64 rng(5);
  const U256& n = P256Order();
  for (int trial = 0; trial < 10; ++trial) {
    U256 a;
    for (auto& l : a.limb) {
      l = rng.Next();
    }
    a = Mod(a, n);
    if (a.IsZero()) {
      continue;
    }
    U256 inv_fast = ModInv(a, n);
    U256 inv_fermat = ModInvPrime(a, n);
    EXPECT_EQ(inv_fast.ToHexString(), inv_fermat.ToHexString());
    EXPECT_EQ(ModMul(a, inv_fast, n).limb[0], 1u);
  }
}

TEST(Bignum, BitLength) {
  EXPECT_EQ(U256::Zero().BitLength(), -1);
  EXPECT_EQ(U256::One().BitLength(), 0);
  EXPECT_EQ(U256::FromUint64(0x100).BitLength(), 8);
  U256 top;
  top.limb[3] = 1ULL << 63;
  EXPECT_EQ(top.BitLength(), 255);
}

// --- P-256 field arithmetic: fast reduction vs slow oracle ---

TEST(P256, SolinasMatchesSlowReduction) {
  SplitMix64 rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    U256 a, b;
    for (auto& l : a.limb) {
      l = rng.Next();
    }
    for (auto& l : b.limb) {
      l = rng.Next();
    }
    a = Mod(a, P256Prime());
    b = Mod(b, P256Prime());
    U256 fast = FeMul(a, b);
    U256 slow = ModMul(a, b, P256Prime());
    ASSERT_EQ(fast.ToHexString(), slow.ToHexString()) << "trial " << trial;
  }
}

TEST(P256, GeneratorOnCurve) { EXPECT_TRUE(AffinePoint::Generator().OnCurve()); }

TEST(P256, OrderTimesGeneratorIsInfinity) {
  AffinePoint r = ScalarBaseMult(P256Order());
  EXPECT_TRUE(r.infinity);
}

TEST(P256, KnownScalarMultVector) {
  // NIST point-multiplication vector: k = 112233445566778899.
  U256 k = U256::FromHexString("18ebbb95eed0e13");
  AffinePoint r = ScalarBaseMult(k);
  ASSERT_FALSE(r.infinity);
  EXPECT_EQ(r.x.ToHexString(), "339150844ec15234807fe862a86be77977dbfb3ae3d96f4c22795513aeaab82f");
  EXPECT_EQ(r.y.ToHexString(), "b1c14ddfdc8ec1b2583f51e85a5eb3a155840f2034730e9b5ada38b674336a21");
}

TEST(P256, ScalarMultDistributesOverAddition) {
  // (a + b) * G == a*G + b*G for random small scalars.
  SplitMix64 rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    U256 a = U256::FromUint64(rng.Next());
    U256 b = U256::FromUint64(rng.Next());
    uint64_t carry = 0;
    U256 sum = Add(a, b, &carry);
    AffinePoint lhs = ScalarBaseMult(sum);
    AffinePoint rhs = PointAdd(ScalarBaseMult(a), ScalarBaseMult(b));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(P256, EncodeDecodeRoundTrip) {
  AffinePoint g = AffinePoint::Generator();
  Bytes enc = g.Encode();
  ASSERT_EQ(enc.size(), 65u);
  auto dec = AffinePoint::Decode(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, g);
}

TEST(P256, DecodeRejectsOffCurve) {
  Bytes enc = AffinePoint::Generator().Encode();
  enc[40] ^= 1;
  EXPECT_FALSE(AffinePoint::Decode(enc).has_value());
}

TEST(P256, DecodeRejectsBadFormat) {
  Bytes enc = AffinePoint::Generator().Encode();
  enc[0] = 0x02;
  EXPECT_FALSE(AffinePoint::Decode(enc).has_value());
  EXPECT_FALSE(AffinePoint::Decode(BytesView(enc.data(), 64)).has_value());
}

// --- ECDSA ---

TEST(Ecdsa, SignVerifyRoundTrip) {
  EcdsaPrivateKey key = EcdsaPrivateKey::FromSeed(ToBytes("test seed"));
  Bytes msg = ToBytes("the quick brown fox");
  EcdsaSignature sig = key.Sign(msg);
  EXPECT_TRUE(key.public_key().Verify(msg, sig));
}

TEST(Ecdsa, WrongMessageFails) {
  EcdsaPrivateKey key = EcdsaPrivateKey::FromSeed(ToBytes("test seed"));
  EcdsaSignature sig = key.Sign(ToBytes("message A"));
  EXPECT_FALSE(key.public_key().Verify(ToBytes("message B"), sig));
}

TEST(Ecdsa, WrongKeyFails) {
  EcdsaPrivateKey key1 = EcdsaPrivateKey::FromSeed(ToBytes("seed 1"));
  EcdsaPrivateKey key2 = EcdsaPrivateKey::FromSeed(ToBytes("seed 2"));
  Bytes msg = ToBytes("message");
  EcdsaSignature sig = key1.Sign(msg);
  EXPECT_FALSE(key2.public_key().Verify(msg, sig));
}

TEST(Ecdsa, CorruptedSignatureFails) {
  EcdsaPrivateKey key = EcdsaPrivateKey::FromSeed(ToBytes("seed"));
  Bytes msg = ToBytes("message");
  EcdsaSignature sig = key.Sign(msg);
  EcdsaSignature bad_r = sig;
  bad_r.r = ModAdd(bad_r.r, U256::One(), P256Order());
  EXPECT_FALSE(key.public_key().Verify(msg, bad_r));
  EcdsaSignature bad_s = sig;
  bad_s.s = ModAdd(bad_s.s, U256::One(), P256Order());
  EXPECT_FALSE(key.public_key().Verify(msg, bad_s));
}

TEST(Ecdsa, ZeroComponentsRejected) {
  EcdsaPrivateKey key = EcdsaPrivateKey::FromSeed(ToBytes("seed"));
  Bytes msg = ToBytes("message");
  EcdsaSignature sig = key.Sign(msg);
  sig.r = U256::Zero();
  EXPECT_FALSE(key.public_key().Verify(msg, sig));
}

TEST(Ecdsa, SignatureEncodingRoundTrip) {
  EcdsaPrivateKey key = EcdsaPrivateKey::FromSeed(ToBytes("seed"));
  EcdsaSignature sig = key.Sign(ToBytes("msg"));
  Bytes enc = sig.Encode();
  ASSERT_EQ(enc.size(), 64u);
  auto dec = EcdsaSignature::Decode(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(key.public_key().Verify(ToBytes("msg"), *dec));
}

TEST(Ecdsa, DeterministicFromSeed) {
  EcdsaPrivateKey a = EcdsaPrivateKey::FromSeed(ToBytes("same"));
  EcdsaPrivateKey b = EcdsaPrivateKey::FromSeed(ToBytes("same"));
  EXPECT_EQ(a.scalar().ToHexString(), b.scalar().ToHexString());
}

TEST(Ecdsa, GenerateProducesDistinctKeys) {
  EcdsaPrivateKey a = EcdsaPrivateKey::Generate();
  EcdsaPrivateKey b = EcdsaPrivateKey::Generate();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.scalar().ToHexString(), b.scalar().ToHexString());
}

TEST(Ecdsa, PublicKeyEncodingRoundTrip) {
  EcdsaPrivateKey key = EcdsaPrivateKey::FromSeed(ToBytes("seed"));
  Bytes enc = key.public_key().Encode();
  auto dec = EcdsaPublicKey::Decode(enc);
  ASSERT_TRUE(dec.has_value());
  EcdsaSignature sig = key.Sign(ToBytes("hello"));
  EXPECT_TRUE(dec->Verify(ToBytes("hello"), sig));
}

// --- ECDH ---

TEST(Ecdh, SharedSecretAgrees) {
  EcdsaPrivateKey alice = EcdsaPrivateKey::FromSeed(ToBytes("alice"));
  EcdsaPrivateKey bob = EcdsaPrivateKey::FromSeed(ToBytes("bob"));
  auto s1 = EcdhSharedSecret(alice.scalar(), bob.public_key().point());
  auto s2 = EcdhSharedSecret(bob.scalar(), alice.public_key().point());
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s1, *s2);
  EXPECT_EQ(s1->size(), 32u);
}

TEST(Ecdh, DifferentPeersDifferentSecrets) {
  EcdsaPrivateKey alice = EcdsaPrivateKey::FromSeed(ToBytes("alice"));
  EcdsaPrivateKey bob = EcdsaPrivateKey::FromSeed(ToBytes("bob"));
  EcdsaPrivateKey carol = EcdsaPrivateKey::FromSeed(ToBytes("carol"));
  auto s1 = EcdhSharedSecret(alice.scalar(), bob.public_key().point());
  auto s2 = EcdhSharedSecret(alice.scalar(), carol.public_key().point());
  EXPECT_NE(*s1, *s2);
}

// --- DRBG ---

TEST(Drbg, DeterministicWhenSeeded) {
  HmacDrbg a(ToBytes("seed"));
  HmacDrbg b(ToBytes("seed"));
  EXPECT_EQ(a.Generate(64), b.Generate(64));
}

TEST(Drbg, DifferentSeedsDiffer) {
  HmacDrbg a(ToBytes("seed 1"));
  HmacDrbg b(ToBytes("seed 2"));
  EXPECT_NE(a.Generate(64), b.Generate(64));
}

TEST(Drbg, SequentialOutputsDiffer) {
  HmacDrbg a(ToBytes("seed"));
  EXPECT_NE(a.Generate(32), a.Generate(32));
}

TEST(Drbg, ExactLength) {
  HmacDrbg a(ToBytes("seed"));
  EXPECT_EQ(a.Generate(7).size(), 7u);
  EXPECT_EQ(a.Generate(33).size(), 33u);
  EXPECT_EQ(a.Generate(0).size(), 0u);
}

}  // namespace
}  // namespace seal::crypto
