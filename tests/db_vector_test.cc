// Vectorized columnar engine (src/db/vector_exec.cc): engine selection,
// fallback accounting, columnar-shadow consistency, and the incremental
// time-index remap after trims.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/obs/obs.h"

namespace seal::db {
namespace {

std::string Fingerprint(const QueryResult& r) {
  std::string out;
  for (const auto& c : r.columns) {
    out += c;
    out += '|';
  }
  out += '\n';
  for (const auto& row : r.rows) {
    for (const auto& v : row) {
      out += v.Serialize();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

// Executes `sql` with the vectorized engine on and off and asserts the
// results are byte-identical.
void ExpectEnginesAgree(Database& db, const std::string& sql) {
  Tuning vec = db.tuning();
  vec.use_vectorized = true;
  Tuning interp = vec;
  interp.use_vectorized = false;
  db.set_tuning(vec);
  auto a = db.Execute(sql);
  db.set_tuning(interp);
  auto b = db.Execute(sql);
  db.set_tuning(vec);
  ASSERT_EQ(a.ok(), b.ok()) << sql;
  if (a.ok()) {
    EXPECT_EQ(Fingerprint(*a), Fingerprint(*b)) << sql;
  }
}

Database MakeFixture() {
  Database db;
  EXPECT_TRUE(db.Execute("CREATE TABLE t(time, a, b, s)").ok());
  const char* strs[] = {"lo", "long-dictionary-string", "hi", "NULL"};
  for (int i = 0; i < 40; ++i) {
    std::string s = strs[i % 4];
    if (s != "NULL") {
      s = "'" + s + std::to_string(i % 3) + "'";
    }
    std::string b = (i % 7 == 0) ? "NULL" : ((i % 5 == 0) ? "0.5" : std::to_string(i % 13 - 6));
    EXPECT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i + 1) + ", " +
                           std::to_string(i % 5) + ", " + b + ", " + s + ")")
                    .ok());
  }
  return db;
}

TEST(VectorizedEngine, SupportedSelectRunsVectorized) {
  obs::Registry::Global().Reset();
  Database db = MakeFixture();
  auto r = db.Execute("SELECT a, COUNT(*), SUM(b) FROM t WHERE b > -4 GROUP BY a");
  ASSERT_TRUE(r.ok());
  auto metrics = obs::Registry::Global().TakeSnapshot();
  EXPECT_GT(metrics.counter("db_vectorized_queries_total"), 0u);
  EXPECT_GT(metrics.counter("db_vectorized_batches_total"), 0u);
  EXPECT_NE(metrics.histogram("db_vector_kernel_nanos{op=\"scan\"}"), nullptr);
  EXPECT_NE(metrics.histogram("db_vector_kernel_nanos{op=\"aggregate\"}"), nullptr);
}

TEST(VectorizedEngine, TuningOffRunsInterpreter) {
  obs::Registry::Global().Reset();
  Database db = MakeFixture();
  Tuning t = db.tuning();
  t.use_vectorized = false;
  db.set_tuning(t);
  ASSERT_TRUE(db.Execute("SELECT a FROM t WHERE b > 0").ok());
  auto metrics = obs::Registry::Global().TakeSnapshot();
  EXPECT_EQ(metrics.counter("db_vectorized_queries_total"), 0u);
}

TEST(VectorizedEngine, UnsupportedShapeFallsBack) {
  obs::Registry::Global().Reset();
  Database db = MakeFixture();
  // Non-equi join condition: the analyzer rejects it and the interpreter
  // produces the result.
  auto r = db.Execute("SELECT x.a, y.a FROM t x JOIN t y ON x.a < y.a LIMIT 3");
  ASSERT_TRUE(r.ok());
  auto metrics = obs::Registry::Global().TakeSnapshot();
  EXPECT_GT(metrics.CounterFamilyTotal("db_vector_fallback_total"), 0u);
  EXPECT_EQ(metrics.counter("db_vectorized_queries_total"), 0u);
}

TEST(VectorizedEngine, JoinKernelsAndResultsMatchInterpreter) {
  Database db = MakeFixture();
  ASSERT_TRUE(db.Execute("CREATE TABLE u(time, a, c)").ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO u VALUES (" + std::to_string(i + 1) + ", " +
                           std::to_string(i % 4) + ", " + std::to_string(i - 6) + ")")
                    .ok());
  }
  ExpectEnginesAgree(db, "SELECT t.a, t.b, u.c FROM t JOIN u ON t.a = u.a WHERE u.c <> 0");
  ExpectEnginesAgree(db, "SELECT t.a, u.c FROM t LEFT JOIN u ON t.b = u.c");
  ExpectEnginesAgree(db, "SELECT * FROM t NATURAL JOIN u ORDER BY 1, 2 LIMIT 10");
  obs::Registry::Global().Reset();
  Tuning vec = db.tuning();
  vec.use_vectorized = true;
  db.set_tuning(vec);
  ASSERT_TRUE(db.Execute("SELECT t.a, u.c FROM t JOIN u ON t.a = u.a").ok());
  auto metrics = obs::Registry::Global().TakeSnapshot();
  EXPECT_GT(metrics.counter("seadb_joins_total{algo=\"vector_hash\"}"), 0u);
}

TEST(VectorizedEngine, SnapshotExecutionAgrees) {
  Database db = MakeFixture();
  Snapshot snap = db.CaptureSnapshot();
  // Mutate after capture; the snapshot views must pin the old prefix for
  // both engines identically.
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (99, 9, 9, 'post')").ok());
  for (const char* sql : {"SELECT a, b, s FROM t WHERE b >= 0",
                          "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a",
                          "SELECT s FROM t WHERE s LIKE 'lo%' ORDER BY 1 LIMIT 5"}) {
    Tuning vec = db.tuning();
    vec.use_vectorized = true;
    db.set_tuning(vec);
    auto a = db.ExecuteSnapshot(sql, snap);
    vec.use_vectorized = false;
    db.set_tuning(vec);
    auto b = db.ExecuteSnapshot(sql, snap);
    ASSERT_TRUE(a.ok() && b.ok()) << sql;
    EXPECT_EQ(Fingerprint(*a), Fingerprint(*b)) << sql;
  }
}

// --- incremental time-index maintenance after trims (PR satellite) ---

// The index after a DELETE-with-WHERE must equal the index of a database
// built from scratch with only the surviving rows.
TEST(TimeIndexAfterTrim, RemappedIndexEqualsRebuiltIndex) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE updates(time, repo)").ok());
  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO updates VALUES (" + std::to_string(i) + ", 'r" +
                           std::to_string(i % 3) + "')")
                    .ok());
  }
  // Trim a non-prefix subset (WHERE on a non-time column) so surviving
  // rows compact to new positions.
  ASSERT_TRUE(db.Execute("DELETE FROM updates WHERE repo = 'r1'").ok());

  Database fresh;
  ASSERT_TRUE(fresh.Execute("CREATE TABLE updates(time, repo)").ok());
  for (int i = 1; i <= 30; ++i) {
    if (i % 3 == 1) {
      continue;
    }
    ASSERT_TRUE(fresh.Execute("INSERT INTO updates VALUES (" + std::to_string(i) + ", 'r" +
                              std::to_string(i % 3) + "')")
                    .ok());
  }
  const auto* remapped = db.TimeIndexForTesting("updates");
  const auto* rebuilt = fresh.TimeIndexForTesting("updates");
  ASSERT_NE(remapped, nullptr);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(*remapped, *rebuilt);

  // And index-narrowed queries agree across engines post-trim.
  ExpectEnginesAgree(db, "SELECT time, repo FROM updates WHERE time > 10");
  ExpectEnginesAgree(db, "SELECT COUNT(*) FROM updates WHERE time > 10 AND time <= 25");
}

TEST(TimeIndexAfterTrim, PrefixTrimKeepsIndexValid) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE updates(time, v)").ok());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO updates VALUES (" + std::to_string(i) + ", " + std::to_string(i) + ")")
            .ok());
  }
  ASSERT_TRUE(db.Execute("DELETE FROM updates WHERE time <= 12").ok());
  const auto* index = db.TimeIndexForTesting("updates");
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(index->size(), 8u);
  for (size_t i = 0; i < index->size(); ++i) {
    EXPECT_EQ((*index)[i].first, static_cast<int64_t>(13 + i));
    EXPECT_EQ((*index)[i].second, i);
  }
  ExpectEnginesAgree(db, "SELECT v FROM updates WHERE time > 15 ORDER BY time");
}

}  // namespace
}  // namespace seal::db
