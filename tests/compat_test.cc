// Exercises the OpenSSL-style compatibility shim exactly the way a ported
// application (Apache/Squid) would use it.
#include <gtest/gtest.h>

#include <thread>

#include "src/core/libseal_compat.h"
#include "src/tls/x509.h"

namespace seal::core::compat {
namespace {

struct CompatPki {
  CompatPki() {
    ca = tls::MakeSelfSignedCa("Compat CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
    key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("srv"));
    cert = tls::IssueCertificate(ca, "compat.example", key.public_key(), 2);
  }
  tls::CertifiedKey ca;
  crypto::EcdsaPrivateKey key;
  tls::Certificate cert;
};

CompatPki& Pki() {
  static CompatPki pki;
  return pki;
}

LibSealOptions Options() {
  LibSealOptions options;
  options.enclave.inject_costs = false;
  options.use_async_calls = false;
  options.audit_log.counter_options.inject_latency = false;
  options.logger.check_interval = 0;
  options.tls.certificate = Pki().cert;
  options.tls.private_key = Pki().key;
  return options;
}

// The classic OpenSSL server loop, verbatim in shape.
void ServeOnce(SSL_CTX* ctx, net::Stream* stream) {
  SSL* ssl = SSL_new(ctx, stream);
  ASSERT_NE(ssl, nullptr);
  ASSERT_EQ(SSL_accept(ssl), 1);
  ASSERT_EQ(SSL_is_init_finished(ssl), 1);
  char buf[128];
  int n = SSL_read(ssl, buf, sizeof(buf));
  ASSERT_GT(n, 0);
  ASSERT_EQ(SSL_write(ssl, buf, n), n);
  SSL_shutdown(ssl);
  SSL_free(ssl);
}

TEST(Compat, OpenSslShapedServerLoop) {
  LibSealRuntime runtime(Options(), nullptr);
  ASSERT_TRUE(runtime.Init().ok());
  auto [client_stream, server_stream] = net::CreateStreamPair();
  std::thread server([&, &server_stream = server_stream] {
    ServeOnce(&runtime, server_stream.get());
  });
  tls::TlsConfig client_config;
  client_config.trusted_roots = {Pki().ca.cert};
  tls::StreamBio bio(client_stream.get());
  tls::TlsConnection client(&bio, &client_config, tls::Role::kClient);
  ASSERT_TRUE(client.Handshake().ok());
  ASSERT_TRUE(client.Write(std::string_view("echo me")).ok());
  uint8_t buf[32];
  auto n = client.Read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), *n), "echo me");
  server.join();
}

TEST(Compat, ExDataLikeApache) {
  LibSealRuntime runtime(Options(), nullptr);
  ASSERT_TRUE(runtime.Init().ok());
  auto [client_stream, server_stream] = net::CreateStreamPair();
  SSL* ssl = SSL_new(&runtime, server_stream.get());
  ASSERT_NE(ssl, nullptr);
  // Apache stores its request record in the TLS object (§4.2).
  int request_rec = 123;
  EXPECT_EQ(SSL_set_ex_data(ssl, 0, &request_rec), 1);
  EXPECT_EQ(SSL_get_ex_data(ssl, 0), &request_rec);
  SSL_free(ssl);
}

TEST(Compat, InfoCallbackLikeApache) {
  static int callback_count = 0;
  callback_count = 0;
  LibSealRuntime runtime(Options(), nullptr);
  SSL_CTX_set_info_callback(&runtime,
                            [](const SSL* ssl, int, int) {
                              EXPECT_NE(ssl, nullptr);
                              ++callback_count;
                            });
  ASSERT_TRUE(runtime.Init().ok());
  auto [client_stream, server_stream] = net::CreateStreamPair();
  std::thread server([&, &server_stream = server_stream] {
    SSL* ssl = SSL_new(&runtime, server_stream.get());
    ASSERT_EQ(SSL_accept(ssl), 1);
    SSL_free(ssl);
  });
  tls::TlsConfig client_config;
  client_config.trusted_roots = {Pki().ca.cert};
  tls::StreamBio bio(client_stream.get());
  tls::TlsConnection client(&bio, &client_config, tls::Role::kClient);
  ASSERT_TRUE(client.Handshake().ok());
  server.join();
  EXPECT_GE(callback_count, 2);
}

}  // namespace
}  // namespace seal::core::compat
