// Messaging service + SSM: drops, modifications and duplicate deliveries
// are detected; honest exchange (including multi-user fan-out) is clean.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/logger.h"
#include "src/json/json.h"
#include "src/services/messaging_service.h"
#include "src/ssm/messaging_ssm.h"

namespace seal::ssm {
namespace {

using core::AuditLogger;
using core::CheckReport;

std::unique_ptr<AuditLogger> MakeLogger() {
  core::AuditLogOptions log_options;
  log_options.counter_options.inject_latency = false;
  core::LoggerOptions logger_options;
  logger_options.check_interval = 0;
  auto logger = std::make_unique<AuditLogger>(std::make_unique<MessagingModule>(), log_options,
                                              logger_options,
                                              crypto::EcdsaPrivateKey::FromSeed(ToBytes("msg")));
  EXPECT_TRUE(logger->Init().ok());
  return logger;
}

class MessagingTest : public ::testing::Test {
 protected:
  void Pump(const http::HttpRequest& request) {
    http::HttpResponse response = service_.Handle(request);
    auto r = logger_->OnPair(request.Serialize(), response.Serialize(), false);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  CheckReport Check() {
    auto report = logger_->CheckInvariants();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return *report;
  }

  services::MessagingService service_;
  std::unique_ptr<AuditLogger> logger_ = MakeLogger();
};

TEST_F(MessagingTest, ServiceQueuesAndDrains) {
  service_.Handle(services::MakeSendMessage("alice", "bob", "m1", "hi"));
  auto rsp = service_.Handle(services::MakeInboxPoll("bob"));
  auto body = json::Parse(rsp.body);
  ASSERT_TRUE(body.ok());
  ASSERT_EQ(body->Get("messages").AsArray().size(), 1u);
  EXPECT_EQ(body->Get("messages").AsArray()[0].Get("body").AsString(), "hi");
  // Queue drained.
  auto again = json::Parse(service_.Handle(services::MakeInboxPoll("bob")).body);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->Get("messages").AsArray().empty());
}

TEST_F(MessagingTest, HonestExchangeIsClean) {
  Pump(services::MakeSendMessage("alice", "bob", "m1", "hello bob"));
  Pump(services::MakeSendMessage("carol", "bob", "m2", "hi from carol"));
  Pump(services::MakeSendMessage("alice", "carol", "m3", "hello carol"));
  Pump(services::MakeInboxPoll("bob"));
  Pump(services::MakeInboxPoll("carol"));
  Pump(services::MakeInboxPoll("bob"));  // empty poll is also fine
  CheckReport report = Check();
  EXPECT_TRUE(report.clean()) << report.Summary();
}

TEST_F(MessagingTest, DroppedMessageDetected) {
  Pump(services::MakeSendMessage("alice", "bob", "m1", "one"));
  Pump(services::MakeSendMessage("alice", "bob", "m2", "two"));
  service_.set_attack(services::MessagingService::Attack::kDropMessage);
  Pump(services::MakeInboxPoll("bob"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].invariant, "messaging-completeness");
}

TEST_F(MessagingTest, ModifiedMessageDetected) {
  Pump(services::MakeSendMessage("alice", "bob", "m1", "the original text"));
  service_.set_attack(services::MessagingService::Attack::kModifyMessage);
  Pump(services::MakeInboxPoll("bob"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].invariant, "messaging-soundness");
}

TEST_F(MessagingTest, DuplicateDeliveryDetected) {
  Pump(services::MakeSendMessage("alice", "bob", "m1", "once please"));
  service_.set_attack(services::MessagingService::Attack::kDuplicate);
  Pump(services::MakeInboxPoll("bob"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
  bool found = false;
  for (const auto& violation : report.violations) {
    if (violation.invariant == "messaging-no-duplicates") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.Summary();
}

TEST_F(MessagingTest, TrimmingKeepsPendingMessages) {
  Pump(services::MakeSendMessage("alice", "bob", "m1", "delivered"));
  Pump(services::MakeInboxPoll("bob"));
  Pump(services::MakeSendMessage("alice", "bob", "m2", "still pending"));
  ASSERT_TRUE(logger_->Trim().ok());
  // m1 (delivered) trimmed; m2 (pending) retained.
  auto rows = logger_->log().Query("SELECT mid FROM msg_sent");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsText(), "m2");
  // A post-trim poll that drops m2 is still detected.
  service_.set_attack(services::MessagingService::Attack::kDropMessage);
  Pump(services::MakeInboxPoll("bob"));
  EXPECT_FALSE(Check().clean());
}

TEST_F(MessagingTest, CleanRunSurvivesTrimCycles) {
  for (int round = 0; round < 5; ++round) {
    Pump(services::MakeSendMessage("alice", "bob", "r" + std::to_string(round), "body"));
    Pump(services::MakeInboxPoll("bob"));
    EXPECT_TRUE(Check().clean());
    ASSERT_TRUE(logger_->Trim().ok());
  }
}

}  // namespace
}  // namespace seal::ssm
