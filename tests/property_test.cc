// Parameterized property sweeps across modules: round-trip laws, metamorphic
// SQL relations, chain tamper-evidence at every position, and async-call
// correctness across the (S, T) configuration space.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "src/asyncall/asyncall.h"
#include "src/common/rng.h"
#include "src/core/audit_log.h"
#include "src/crypto/gcm.h"
#include "src/crypto/sha256.h"
#include "src/db/database.h"
#include "src/net/net.h"
#include "src/tls/tls.h"
#include "src/tls/x509.h"

namespace seal {
namespace {

// --- AEAD round trip across payload sizes (block boundaries included) ---

class GcmSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(GcmSizeSweep, SealOpenRoundTrip) {
  size_t size = GetParam();
  SplitMix64 rng(size + 1);
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  crypto::Aes128Gcm gcm(key);
  Bytes pt(size);
  for (auto& b : pt) {
    b = static_cast<uint8_t>(rng.Next());
  }
  Bytes nonce(12);
  for (auto& b : nonce) {
    b = static_cast<uint8_t>(rng.Next());
  }
  Bytes aad = ToBytes("aad-" + std::to_string(size));
  Bytes sealed = gcm.Seal(nonce, aad, pt);
  EXPECT_EQ(sealed.size(), size + crypto::kGcmTagSize);
  auto opened = gcm.Open(nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
  // A different nonce must not decrypt.
  Bytes other_nonce = nonce;
  other_nonce[11] ^= 1;
  EXPECT_FALSE(gcm.Open(other_nonce, aad, sealed).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 100, 1000, 4096,
                                           16384));

// --- SHA-256: incremental == one-shot at every chunking ---

class Sha256ChunkSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha256ChunkSweep, IncrementalMatchesOneShot) {
  size_t chunk = GetParam();
  Bytes data(3000);
  SplitMix64 rng(chunk);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  crypto::Sha256 h;
  for (size_t off = 0; off < data.size(); off += chunk) {
    size_t take = std::min(chunk, data.size() - off);
    h.Update(BytesView(data.data() + off, take));
  }
  EXPECT_EQ(h.Finish(), crypto::Sha256::Hash(data));
}

INSTANTIATE_TEST_SUITE_P(Chunks, Sha256ChunkSweep,
                         ::testing::Values(1, 7, 55, 56, 63, 64, 65, 128, 1000, 3000));

// --- SQL metamorphic properties over random tables ---

class SqlMetamorphic : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlMetamorphic, PartitionAndAggregationLaws) {
  uint64_t seed = GetParam();
  SplitMix64 rng(seed);
  db::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t(k, v)").ok());
  int64_t n = rng.Range(0, 40);
  int64_t total_v = 0;
  for (int64_t i = 0; i < n; ++i) {
    int64_t k = rng.Range(0, 5);
    int64_t v = rng.Range(-100, 100);
    total_v += v;
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(k) + ", " +
                           std::to_string(v) + ")")
                    .ok());
  }
  // COUNT(*) equals the number of inserted rows.
  auto count = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), n);
  // WHERE p and WHERE NOT p partition the table.
  auto pos = db.Execute("SELECT COUNT(*) FROM t WHERE v >= 0");
  auto neg = db.Execute("SELECT COUNT(*) FROM t WHERE NOT (v >= 0)");
  ASSERT_TRUE(pos.ok());
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(pos->rows[0][0].AsInt() + neg->rows[0][0].AsInt(), n);
  // SUM over groups equals the global sum.
  auto group_sums = db.Execute("SELECT SUM(v) FROM t GROUP BY k");
  ASSERT_TRUE(group_sums.ok());
  int64_t regrouped = 0;
  for (const db::Row& row : group_sums->rows) {
    regrouped += row[0].AsInt();
  }
  if (n > 0) {
    EXPECT_EQ(regrouped, total_v);
    auto sum = db.Execute("SELECT SUM(v) FROM t");
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ(sum->rows[0][0].AsInt(), total_v);
  }
  // DISTINCT k count equals number of GROUP BY k groups.
  auto distinct = db.Execute("SELECT DISTINCT k FROM t");
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->rows.size(), group_sums->rows.size());
  // ORDER BY returns the same multiset, sorted.
  auto ordered = db.Execute("SELECT v FROM t ORDER BY v");
  ASSERT_TRUE(ordered.ok());
  ASSERT_EQ(ordered->rows.size(), static_cast<size_t>(n));
  for (size_t i = 1; i < ordered->rows.size(); ++i) {
    EXPECT_LE(ordered->rows[i - 1][0].AsInt(), ordered->rows[i][0].AsInt());
  }
  // LIMIT respects its bound and is a prefix of the ordered result.
  auto limited = db.Execute("SELECT v FROM t ORDER BY v LIMIT 5");
  ASSERT_TRUE(limited.ok());
  EXPECT_LE(limited->rows.size(), 5u);
  for (size_t i = 0; i < limited->rows.size(); ++i) {
    EXPECT_EQ(limited->rows[i][0].AsInt(), ordered->rows[i][0].AsInt());
  }
  // DELETE p removes exactly the WHERE p rows.
  auto deleted = db.Execute("DELETE FROM t WHERE v >= 0");
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(static_cast<int64_t>(deleted->affected), pos->rows[0][0].AsInt());
  auto rest = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->rows[0][0].AsInt(), neg->rows[0][0].AsInt());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlMetamorphic, ::testing::Range(uint64_t{1}, uint64_t{13}));

// --- vectorized vs interpreted engine: byte-identical SELECT results ---

std::string ResultFingerprint(const db::QueryResult& r) {
  std::string out;
  for (const auto& c : r.columns) {
    out += c;
    out += '|';
  }
  out += '\n';
  for (const db::Row& row : r.rows) {
    for (const db::Value& v : row) {
      out += v.Serialize();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

void ExpectEnginesAgree(db::Database& db, const std::string& sql,
                        const db::Snapshot* snap = nullptr) {
  db::Tuning t = db.tuning();
  t.use_vectorized = true;
  db.set_tuning(t);
  auto vec = snap ? db.ExecuteSnapshot(sql, *snap) : db.Execute(sql);
  t.use_vectorized = false;
  db.set_tuning(t);
  auto interp = snap ? db.ExecuteSnapshot(sql, *snap) : db.Execute(sql);
  t.use_vectorized = true;
  db.set_tuning(t);
  ASSERT_EQ(vec.ok(), interp.ok()) << sql;
  if (vec.ok()) {
    EXPECT_EQ(ResultFingerprint(*vec), ResultFingerprint(*interp)) << sql;
  }
}

class VectorizedDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorizedDifferential, RandomSelectsByteIdenticalAcrossEngines) {
  uint64_t seed = GetParam();
  SplitMix64 rng(seed);
  db::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t1(time, a, b, s)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t2(time, a, c)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE empty_t(time, x)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE nulls(time, nv)").ok());
  const int64_t n1 = rng.Range(0, 50);
  for (int64_t i = 0; i < n1; ++i) {
    std::string b;
    switch (rng.Range(0, 4)) {
      case 0:
        b = "NULL";
        break;
      case 1:
        b = std::to_string(rng.Range(-8, 8)) + ".25";  // exact in binary
        break;
      default:
        b = std::to_string(rng.Range(-40, 40));
    }
    std::string s;
    switch (rng.Range(0, 4)) {
      case 0:
        s = "NULL";
        break;
      case 1:
        // Long enough to land in the column store's text dictionary.
        s = "'prefix-shared-long-string-" + std::to_string(rng.Range(0, 3)) + "'";
        break;
      default:
        s = "'s" + std::to_string(rng.Range(0, 6)) + "'";  // inline-width
    }
    ASSERT_TRUE(db.Execute("INSERT INTO t1 VALUES (" + std::to_string(i + 1) + ", " +
                           std::to_string(rng.Range(0, 5)) + ", " + b + ", " + s + ")")
                    .ok());
  }
  const int64_t n2 = rng.Range(0, 25);
  for (int64_t i = 0; i < n2; ++i) {
    std::string c = rng.Range(0, 5) == 0 ? "NULL" : std::to_string(rng.Range(-20, 20));
    ASSERT_TRUE(db.Execute("INSERT INTO t2 VALUES (" + std::to_string(i + 1) + ", " +
                           std::to_string(rng.Range(0, 5)) + ", " + c + ")")
                    .ok());
  }
  for (int64_t i = 0; i < rng.Range(0, 6); ++i) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO nulls VALUES (" + std::to_string(i + 1) + ", NULL)").ok());
  }

  const char* kCmp[] = {"<", "<=", ">", ">=", "=", "<>"};
  std::vector<std::string> queries = {
      "SELECT a, b, s FROM t1",
      "SELECT DISTINCT a FROM t1",
      "SELECT a, b FROM t1 WHERE b " + std::string(kCmp[rng.Range(0, 6)]) + " " +
          std::to_string(rng.Range(-10, 10)),
      "SELECT a, b FROM t1 WHERE b BETWEEN " + std::to_string(rng.Range(-20, 0)) + " AND " +
          std::to_string(rng.Range(0, 20)) + " ORDER BY b DESC, a LIMIT 9",
      "SELECT s FROM t1 WHERE s LIKE 's%' ORDER BY 1",
      "SELECT a, b FROM t1 WHERE a IN (0, 2, 4) OR b IS NULL",
      "SELECT a + 1, b * 2, -b FROM t1 WHERE NOT (a = " + std::to_string(rng.Range(0, 5)) +
          ") LIMIT 12",
      "SELECT COALESCE(s, 'none'), LENGTH(s) FROM t1",
      "SELECT SUBSTR(s, 2, 3) FROM t1 WHERE s IS NOT NULL",
      "SELECT t1.a, t1.b, t2.c FROM t1 JOIN t2 ON t1.a = t2.a WHERE t2.c > " +
          std::to_string(rng.Range(-15, 5)),
      "SELECT t1.a, t2.c FROM t1 LEFT JOIN t2 ON t1.b = t2.c",
      "SELECT a, COUNT(*), SUM(b), AVG(b), MIN(b), MAX(s) FROM t1 GROUP BY a",
      "SELECT a, COUNT(DISTINCT s) FROM t1 GROUP BY a HAVING COUNT(*) > 1",
      "SELECT COUNT(*) FROM t1 WHERE time > " + std::to_string(rng.Range(0, 40)),
      "SELECT x FROM empty_t WHERE x > 0",
      "SELECT COUNT(*), SUM(x) FROM empty_t",
      "SELECT nv FROM nulls WHERE nv IS NULL",
      "SELECT nv, COUNT(*) FROM nulls GROUP BY nv",
      "SELECT s, a FROM t1 ORDER BY s, a LIMIT " + std::to_string(rng.Range(1, 20)),
  };
  for (const std::string& sql : queries) {
    ExpectEnginesAgree(db, sql);
  }

  // Snapshot execution (pinned columnar views) must agree too.
  const db::Snapshot snap = db.CaptureSnapshot();
  ExpectEnginesAgree(db, "SELECT a, b, s FROM t1 WHERE b >= 0", &snap);
  ExpectEnginesAgree(db, "SELECT a, COUNT(*) FROM t1 GROUP BY a", &snap);

  // Post-trim: DELETE compacts rows and remaps the time index; both
  // engines must see the same surviving relation.
  ASSERT_TRUE(db.Execute("DELETE FROM t1 WHERE time <= " + std::to_string(n1 / 2)).ok());
  ASSERT_TRUE(db.Execute("DELETE FROM t2 WHERE c < 0").ok());
  for (const std::string& sql : queries) {
    ExpectEnginesAgree(db, sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedDifferential,
                         ::testing::Range(uint64_t{1}, uint64_t{17}));

// --- hash chain: a flip at EVERY byte offset of the persisted log trips
// verification ---

class ChainTamperSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ChainTamperSweep, FlipAtOffsetDetected) {
  size_t offset_step = GetParam();
  std::string path =
      std::string(::testing::TempDir()) + "/chain_sweep_" + std::to_string(offset_step) + ".log";
  crypto::EcdsaPrivateKey key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("sweep"));
  core::AuditLogOptions options;
  options.mode = core::PersistenceMode::kDisk;
  options.path = path;
  options.counter_options.inject_latency = false;
  core::AuditLog log(options, key);
  ASSERT_TRUE(log.ExecuteSchema({"CREATE TABLE updates(time, repo, branch, cid, type)"}).ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(log.Append("updates",
                           {db::Value(static_cast<int64_t>(i)), db::Value(std::string("r")),
                            db::Value(std::string("main")),
                            db::Value(std::string("c") + std::to_string(i)),
                            db::Value(std::string("update"))})
                    .ok());
  }
  ASSERT_TRUE(log.CommitHead().ok());
  ASSERT_TRUE(core::AuditLog::VerifyLogFile(path, key.public_key(), log.counter()).ok());

  // Flip one byte at every offset_step-th position.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  for (long pos = static_cast<long>(offset_step) % size; pos < size;
       pos += static_cast<long>(offset_step) + 13) {
    std::FILE* rw = std::fopen(path.c_str(), "rb+");
    std::fseek(rw, pos, SEEK_SET);
    int c = std::fgetc(rw);
    std::fseek(rw, pos, SEEK_SET);
    std::fputc(c ^ 0x01, rw);
    std::fclose(rw);
    EXPECT_FALSE(core::AuditLog::VerifyLogFile(path, key.public_key(), log.counter()).ok())
        << "flip at " << pos << " went undetected";
    // Restore.
    rw = std::fopen(path.c_str(), "rb+");
    std::fseek(rw, pos, SEEK_SET);
    std::fputc(c, rw);
    std::fclose(rw);
  }
  EXPECT_TRUE(core::AuditLog::VerifyLogFile(path, key.public_key(), log.counter()).ok());
}

INSTANTIATE_TEST_SUITE_P(Offsets, ChainTamperSweep, ::testing::Values(0, 1, 2, 3, 5, 7));

// --- async-call correctness across the (S, T) configuration space ---

struct AsyncConfig {
  int workers;
  int tasks;
};

class AsyncConfigSweep : public ::testing::TestWithParam<AsyncConfig> {};

TEST_P(AsyncConfigSweep, AllCallsCompleteWithOcalls) {
  AsyncConfig config = GetParam();
  sgx::EnclaveConfig enclave_config;
  enclave_config.inject_costs = false;
  sgx::Enclave enclave(enclave_config, ToBytes("sweep"), "signer");
  std::atomic<int> ocall_sum{0};
  int ocall_id =
      enclave.RegisterOcall("add", [&](void* d) { ocall_sum.fetch_add(*static_cast<int*>(d)); });
  int ecall_id = enclave.RegisterEcall("work", [&](void* d) {
    ASSERT_TRUE(asyncall::AsyncCallRuntime::AsyncOcall(ocall_id, d).ok());
  });
  asyncall::AsyncCallRuntime::Options options;
  options.enclave_threads = config.workers;
  options.tasks_per_thread = config.tasks;
  asyncall::AsyncCallRuntime runtime(&enclave, options);
  runtime.Start();
  constexpr int kThreads = 6;
  constexpr int kCalls = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      int one = 1;
      for (int i = 0; i < kCalls; ++i) {
        ASSERT_TRUE(runtime.AsyncEcall(ecall_id, &one).ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  runtime.Stop();
  EXPECT_EQ(ocall_sum.load(), kThreads * kCalls);
}

INSTANTIATE_TEST_SUITE_P(Configs, AsyncConfigSweep,
                         ::testing::Values(AsyncConfig{1, 1}, AsyncConfig{1, 8},
                                           AsyncConfig{2, 4}, AsyncConfig{3, 48},
                                           AsyncConfig{4, 12}),
                         [](const ::testing::TestParamInfo<AsyncConfig>& info) {
                           return "S" + std::to_string(info.param.workers) + "T" +
                                  std::to_string(info.param.tasks);
                         });

// --- TLS transfers across sizes and link conditions ---

struct LinkCase {
  size_t bytes;
  int64_t latency_nanos;
  int64_t bandwidth;
};

class TlsLinkSweep : public ::testing::TestWithParam<LinkCase> {};

TEST_P(TlsLinkSweep, TransferIntactOverLink) {
  LinkCase link = GetParam();
  tls::CertifiedKey ca =
      tls::MakeSelfSignedCa("Sweep CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
  crypto::EcdsaPrivateKey key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("srv"));
  tls::Certificate cert = tls::IssueCertificate(ca, "sweep", key.public_key(), 2);
  auto [client_stream, server_stream] =
      net::CreateStreamPair(link.latency_nanos, link.bandwidth);
  tls::StreamBio client_bio(client_stream.get());
  tls::StreamBio server_bio(server_stream.get());
  tls::TlsConfig server_config;
  server_config.certificate = cert;
  server_config.private_key = key;
  tls::TlsConfig client_config;
  client_config.trusted_roots = {ca.cert};
  tls::TlsConnection client(&client_bio, &client_config, tls::Role::kClient);
  tls::TlsConnection server(&server_bio, &server_config, tls::Role::kServer);
  Status server_status = Internal("unset");
  Bytes received;
  std::thread server_thread([&] {
    server_status = server.Handshake();
    if (!server_status.ok()) {
      return;
    }
    uint8_t buf[4096];
    while (received.size() < link.bytes) {
      auto n = server.Read(buf, sizeof(buf));
      if (!n.ok() || *n == 0) {
        break;
      }
      received.insert(received.end(), buf, buf + *n);
    }
  });
  ASSERT_TRUE(client.Handshake().ok());
  Bytes payload(link.bytes);
  SplitMix64 rng(link.bytes);
  for (auto& b : payload) {
    b = static_cast<uint8_t>(rng.Next());
  }
  ASSERT_TRUE(client.Write(payload).ok());
  server_thread.join();
  ASSERT_TRUE(server_status.ok());
  EXPECT_EQ(received, payload);
}

INSTANTIATE_TEST_SUITE_P(
    Links, TlsLinkSweep,
    ::testing::Values(LinkCase{1, 0, 0}, LinkCase{100, 1'000'000, 0},
                      LinkCase{16384, 0, 10'000'000}, LinkCase{16385, 500'000, 5'000'000},
                      LinkCase{100'000, 0, 0}),
    [](const ::testing::TestParamInfo<LinkCase>& info) {
      return "B" + std::to_string(info.param.bytes) + "L" +
             std::to_string(info.param.latency_nanos / 1000) + "us";
    });

}  // namespace
}  // namespace seal
