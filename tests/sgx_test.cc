#include <gtest/gtest.h>

#include <thread>

#include "src/common/clock.h"
#include "src/sgx/attestation.h"
#include "src/sgx/counter.h"
#include "src/sgx/enclave.h"
#include "src/sgx/sealing.h"

namespace seal::sgx {
namespace {

EnclaveConfig FastConfig() {
  EnclaveConfig config;
  config.inject_costs = false;  // keep unit tests fast
  return config;
}

TEST(Enclave, EcallRunsHandler) {
  Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  int observed = 0;
  int id = enclave.RegisterEcall("set", [&](void* data) { observed = *static_cast<int*>(data); });
  int value = 42;
  ASSERT_TRUE(enclave.Ecall(id, &value).ok());
  EXPECT_EQ(observed, 42);
  EXPECT_EQ(enclave.stats().ecalls, 1u);
}

TEST(Enclave, UnknownEcallRejected) {
  Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  EXPECT_FALSE(enclave.Ecall(0, nullptr).ok());
  EXPECT_FALSE(enclave.Ecall(-1, nullptr).ok());
}

TEST(Enclave, OcallOnlyFromInside) {
  Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  bool outside_ran = false;
  int ocall_id = enclave.RegisterOcall("out", [&](void*) { outside_ran = true; });
  // From outside: rejected.
  EXPECT_FALSE(enclave.Ocall(ocall_id, nullptr).ok());
  EXPECT_FALSE(outside_ran);
  // From inside an ecall: allowed.
  Status inner_status = Internal("unset");
  int ecall_id = enclave.RegisterEcall(
      "in", [&](void*) { inner_status = enclave.Ocall(ocall_id, nullptr); });
  ASSERT_TRUE(enclave.Ecall(ecall_id, nullptr).ok());
  EXPECT_TRUE(inner_status.ok());
  EXPECT_TRUE(outside_ran);
  EXPECT_EQ(enclave.stats().ocalls, 1u);
}

TEST(Enclave, InsideEnclaveTracksDepth) {
  Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  EXPECT_FALSE(Enclave::InsideEnclave());
  bool inside = false;
  bool inside_during_ocall = true;
  int ocall_id =
      enclave.RegisterOcall("check", [&](void*) { inside_during_ocall = Enclave::InsideEnclave(); });
  int ecall_id = enclave.RegisterEcall("check", [&](void*) {
    inside = Enclave::InsideEnclave();
    (void)enclave.Ocall(ocall_id, nullptr);
  });
  ASSERT_TRUE(enclave.Ecall(ecall_id, nullptr).ok());
  EXPECT_TRUE(inside);
  EXPECT_FALSE(inside_during_ocall);  // ocalls run outside
  EXPECT_FALSE(Enclave::InsideEnclave());
}

TEST(Enclave, TransitionCostGrowsWithThreads) {
  // The cost model: with ~20 threads the per-transition cycle charge must
  // exceed the single-thread charge substantially (paper: 20x at 48).
  EnclaveConfig config = FastConfig();
  Enclave enclave(config, ToBytes("code"), "signer");
  int id = enclave.RegisterEcall("nop", [](void*) {});
  ASSERT_TRUE(enclave.Ecall(id, nullptr).ok());
  uint64_t single = enclave.stats().simulated_cycles;
  EXPECT_GE(single, 2 * config.transition_base_cycles);  // entry + exit

  // Hold many threads inside, then measure one more transition.
  enclave.ResetStats();
  std::atomic<bool> release{false};
  std::atomic<int> entered{0};
  int hold_id = enclave.RegisterEcall("hold", [&](void*) {
    entered.fetch_add(1);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> holders;
  for (int i = 0; i < 20; ++i) {
    holders.emplace_back([&] { (void)enclave.Ecall(hold_id, nullptr); });
  }
  while (entered.load() < 20) {
    std::this_thread::yield();
  }
  enclave.ResetStats();
  ASSERT_TRUE(enclave.Ecall(id, nullptr).ok());
  uint64_t crowded = enclave.stats().simulated_cycles;
  release.store(true);
  for (auto& t : holders) {
    t.join();
  }
  EXPECT_GT(crowded, 5 * single);
}

TEST(Enclave, EpcAccountingAndPaging) {
  EnclaveConfig config = FastConfig();
  config.epc_limit_bytes = 1024;
  Enclave enclave(config, ToBytes("code"), "signer");
  enclave.TrackAlloc(512);
  EXPECT_EQ(enclave.stats().epc_pages_swapped, 0u);
  enclave.TrackAlloc(1024);  // crosses the limit
  EXPECT_GT(enclave.stats().epc_pages_swapped, 0u);
  enclave.TrackFree(1536);
  EXPECT_EQ(enclave.epc_in_use(), 0u);
}

TEST(Enclave, MeasurementIsCodeHash) {
  Enclave a(FastConfig(), ToBytes("code A"), "signer");
  Enclave b(FastConfig(), ToBytes("code B"), "signer");
  Enclave a2(FastConfig(), ToBytes("code A"), "signer");
  EXPECT_NE(a.measurement(), b.measurement());
  EXPECT_EQ(a.measurement(), a2.measurement());
}

TEST(Enclave, ConcurrentEcallsAreSafe) {
  Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  std::atomic<int> counter{0};
  int id = enclave.RegisterEcall("inc", [&](void*) { counter.fetch_add(1); });
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        (void)enclave.Ecall(id, nullptr);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.load(), 800);
  EXPECT_EQ(enclave.stats().ecalls, 800u);
  EXPECT_EQ(enclave.threads_inside(), 0);
}

// --- sealing ---

TEST(Sealing, RoundTrip) {
  Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  Bytes sealed = SealData(enclave, SealPolicy::kMrEnclave, ToBytes("secret"), ToBytes("aad"));
  auto opened = UnsealData(enclave, SealPolicy::kMrEnclave, sealed, ToBytes("aad"));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(ToString(*opened), "secret");
}

TEST(Sealing, MrEnclaveBindsToMeasurement) {
  Enclave a(FastConfig(), ToBytes("code A"), "signer");
  Enclave b(FastConfig(), ToBytes("code B"), "signer");
  Bytes sealed = SealData(a, SealPolicy::kMrEnclave, ToBytes("secret"), {});
  EXPECT_FALSE(UnsealData(b, SealPolicy::kMrEnclave, sealed, {}).ok());
}

TEST(Sealing, MrSignerSharedAcrossEnclavesOfSameSigner) {
  // The paper relies on this to share sealed logs across machines (§6.3).
  Enclave a(FastConfig(), ToBytes("code A"), "libseal-authority");
  Enclave b(FastConfig(), ToBytes("code B"), "libseal-authority");
  Enclave evil(FastConfig(), ToBytes("code B"), "other-authority");
  Bytes sealed = SealData(a, SealPolicy::kMrSigner, ToBytes("log"), {});
  EXPECT_TRUE(UnsealData(b, SealPolicy::kMrSigner, sealed, {}).ok());
  EXPECT_FALSE(UnsealData(evil, SealPolicy::kMrSigner, sealed, {}).ok());
}

TEST(Sealing, TamperDetected) {
  Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  Bytes sealed = SealData(enclave, SealPolicy::kMrEnclave, ToBytes("secret"), {});
  for (size_t i = 0; i < sealed.size(); i += 7) {
    Bytes mutated = sealed;
    mutated[i] ^= 0x80;
    EXPECT_FALSE(UnsealData(enclave, SealPolicy::kMrEnclave, mutated, {}).ok()) << i;
  }
}

TEST(Sealing, WrongAadRejected) {
  Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  Bytes sealed = SealData(enclave, SealPolicy::kMrEnclave, ToBytes("secret"), ToBytes("v1"));
  EXPECT_FALSE(UnsealData(enclave, SealPolicy::kMrEnclave, sealed, ToBytes("v2")).ok());
}

// --- attestation ---

TEST(Attestation, QuoteVerifies) {
  Enclave enclave(FastConfig(), ToBytes("libseal-code"), "signer");
  QuotingEnclave qe;
  AttestationService ias;
  ias.TrustPlatform(qe.platform_key());
  Quote quote = qe.GenerateQuote(enclave, ToBytes("tls-cert-hash"));
  EXPECT_TRUE(ias.VerifyQuote(quote).ok());
  crypto::Sha256Digest expected = enclave.measurement();
  EXPECT_TRUE(ias.VerifyQuote(quote, &expected).ok());
}

TEST(Attestation, WrongMeasurementRejected) {
  Enclave enclave(FastConfig(), ToBytes("libseal-code"), "signer");
  Enclave other(FastConfig(), ToBytes("malicious-code"), "signer");
  QuotingEnclave qe;
  AttestationService ias;
  ias.TrustPlatform(qe.platform_key());
  Quote quote = qe.GenerateQuote(other, ToBytes("data"));
  crypto::Sha256Digest expected = enclave.measurement();
  EXPECT_FALSE(ias.VerifyQuote(quote, &expected).ok());
}

TEST(Attestation, UntrustedPlatformRejected) {
  Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  QuotingEnclave qe;
  AttestationService ias;  // trusts nobody
  Quote quote = qe.GenerateQuote(enclave, {});
  EXPECT_FALSE(ias.VerifyQuote(quote).ok());
}

TEST(Attestation, TamperedQuoteRejected) {
  Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  QuotingEnclave qe;
  AttestationService ias;
  ias.TrustPlatform(qe.platform_key());
  Quote quote = qe.GenerateQuote(enclave, ToBytes("report"));
  quote.report_data[0] ^= 1;  // forge the report data
  EXPECT_FALSE(ias.VerifyQuote(quote).ok());
}

TEST(Attestation, EncodeDecodeRoundTrip) {
  Enclave enclave(FastConfig(), ToBytes("code"), "the-signer");
  QuotingEnclave qe;
  Quote quote = qe.GenerateQuote(enclave, ToBytes("report-data"));
  Bytes encoded = quote.Encode();
  auto decoded = Quote::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->signer, "the-signer");
  EXPECT_EQ(ToString(decoded->report_data), "report-data");
  AttestationService ias;
  ias.TrustPlatform(qe.platform_key());
  EXPECT_TRUE(ias.VerifyQuote(*decoded).ok());
}

// --- hardware monotonic counter ---

TEST(HardwareCounter, MonotonicIncrements) {
  HardwareMonotonicCounter::Options options;
  options.inject_latency = false;
  HardwareMonotonicCounter counter(options);
  EXPECT_EQ(counter.Read(), 0u);
  for (uint64_t i = 1; i <= 10; ++i) {
    auto v = counter.Increment();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(counter.Read(), 10u);
}

TEST(HardwareCounter, WearBudgetEnforced) {
  HardwareMonotonicCounter::Options options;
  options.inject_latency = false;
  options.max_increments = 3;
  HardwareMonotonicCounter counter(options);
  EXPECT_TRUE(counter.Increment().ok());
  EXPECT_TRUE(counter.Increment().ok());
  EXPECT_TRUE(counter.Increment().ok());
  EXPECT_FALSE(counter.Increment().ok());
}

TEST(HardwareCounter, LatencyInjected) {
  HardwareMonotonicCounter::Options options;
  options.increment_latency_nanos = 20 * 1000 * 1000;  // 20 ms
  HardwareMonotonicCounter counter(options);
  int64_t start = NowNanos();
  ASSERT_TRUE(counter.Increment().ok());
  EXPECT_GE(NowNanos() - start, 20 * 1000 * 1000);
}

}  // namespace
}  // namespace seal::sgx
