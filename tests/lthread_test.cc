#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/lthread/lthread.h"

namespace seal::lthread {
namespace {

TEST(Lthread, RunsSingleTask) {
  Scheduler sched;
  bool ran = false;
  sched.Spawn([&] { ran = true; });
  sched.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.live_tasks(), 0u);
}

TEST(Lthread, TasksInterleaveOnYield) {
  Scheduler sched;
  std::string trace;
  sched.Spawn([&] {
    trace += "a1 ";
    Scheduler::Yield();
    trace += "a2 ";
  });
  sched.Spawn([&] {
    trace += "b1 ";
    Scheduler::Yield();
    trace += "b2 ";
  });
  sched.Run();
  EXPECT_EQ(trace, "a1 b1 a2 b2 ");
}

TEST(Lthread, ManyTasksAllComplete) {
  Scheduler sched;
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    sched.Spawn([&] {
      for (int j = 0; j < 5; ++j) {
        Scheduler::Yield();
      }
      ++done;
    });
  }
  sched.Run();
  EXPECT_EQ(done, 100);
}

TEST(Lthread, BlockAndWake) {
  Scheduler sched;
  bool finished = false;
  Task* blocked = sched.Spawn([&] {
    Scheduler::Block();
    finished = true;
  });
  // One round: the task blocks and cannot finish.
  sched.RunOnce();
  EXPECT_FALSE(finished);
  EXPECT_EQ(blocked->state(), Task::State::kBlocked);
  // Run() bails when everything is blocked.
  sched.Run();
  EXPECT_FALSE(finished);
  // Wake it and it completes.
  sched.MakeRunnable(blocked);
  sched.Run();
  EXPECT_TRUE(finished);
}

TEST(Lthread, CurrentVisibleInsideTask) {
  Scheduler sched;
  Task* self = nullptr;
  Task* spawned = sched.Spawn([&] { self = Scheduler::Current(); });
  sched.Run();
  EXPECT_EQ(self, spawned);
  EXPECT_EQ(Scheduler::Current(), nullptr);
}

TEST(Lthread, UserDataSurvivesYields) {
  Scheduler sched;
  int payload = 7;
  int* observed = nullptr;
  sched.Spawn([&] {
    Scheduler::Current()->set_user_data(&payload);
    Scheduler::Yield();
    observed = static_cast<int*>(Scheduler::Current()->user_data());
  });
  sched.Spawn([&] {
    // A second task must not see the first task's user data.
    EXPECT_EQ(Scheduler::Current()->user_data(), nullptr);
    Scheduler::Yield();
  });
  sched.Run();
  ASSERT_NE(observed, nullptr);
  EXPECT_EQ(*observed, 7);
}

TEST(Lthread, TasksSpawnedDuringRunExecute) {
  Scheduler sched;
  bool inner_ran = false;
  sched.Spawn([&] { sched.Spawn([&] { inner_ran = true; }); });
  sched.Run();
  EXPECT_TRUE(inner_ran);
}

TEST(Lthread, DeepCallStacksWork) {
  Scheduler sched;
  // Recursion exercising a fair chunk of the coroutine stack.
  std::function<int(int)> fib = [&](int n) -> int {
    volatile char pad[256];  // consume stack
    pad[0] = 0;
    return n < 2 ? n : fib(n - 1) + fib(n - 2);
  };
  int result = 0;
  sched.Spawn([&] { result = fib(15); });
  sched.Run();
  EXPECT_EQ(result, 610);
}

}  // namespace
}  // namespace seal::lthread
