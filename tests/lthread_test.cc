#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/lthread/lthread.h"

namespace seal::lthread {
namespace {

TEST(Lthread, RunsSingleTask) {
  Scheduler sched;
  bool ran = false;
  sched.Spawn([&] { ran = true; });
  sched.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.live_tasks(), 0u);
}

TEST(Lthread, TasksInterleaveOnYield) {
  Scheduler sched;
  std::string trace;
  sched.Spawn([&] {
    trace += "a1 ";
    Scheduler::Yield();
    trace += "a2 ";
  });
  sched.Spawn([&] {
    trace += "b1 ";
    Scheduler::Yield();
    trace += "b2 ";
  });
  sched.Run();
  EXPECT_EQ(trace, "a1 b1 a2 b2 ");
}

TEST(Lthread, ManyTasksAllComplete) {
  Scheduler sched;
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    sched.Spawn([&] {
      for (int j = 0; j < 5; ++j) {
        Scheduler::Yield();
      }
      ++done;
    });
  }
  sched.Run();
  EXPECT_EQ(done, 100);
}

TEST(Lthread, BlockAndWake) {
  Scheduler sched;
  bool finished = false;
  Task* blocked = sched.Spawn([&] {
    Scheduler::Block();
    finished = true;
  });
  // One round: the task blocks and cannot finish.
  sched.RunOnce();
  EXPECT_FALSE(finished);
  EXPECT_EQ(blocked->state(), Task::State::kBlocked);
  // Run() bails when everything is blocked.
  sched.Run();
  EXPECT_FALSE(finished);
  // Wake it and it completes.
  sched.MakeRunnable(blocked);
  sched.Run();
  EXPECT_TRUE(finished);
}

TEST(Lthread, CurrentVisibleInsideTask) {
  Scheduler sched;
  Task* self = nullptr;
  Task* spawned = sched.Spawn([&] { self = Scheduler::Current(); });
  sched.Run();
  EXPECT_EQ(self, spawned);
  EXPECT_EQ(Scheduler::Current(), nullptr);
}

TEST(Lthread, UserDataSurvivesYields) {
  Scheduler sched;
  int payload = 7;
  int* observed = nullptr;
  sched.Spawn([&] {
    Scheduler::Current()->set_user_data(&payload);
    Scheduler::Yield();
    observed = static_cast<int*>(Scheduler::Current()->user_data());
  });
  sched.Spawn([&] {
    // A second task must not see the first task's user data.
    EXPECT_EQ(Scheduler::Current()->user_data(), nullptr);
    Scheduler::Yield();
  });
  sched.Run();
  ASSERT_NE(observed, nullptr);
  EXPECT_EQ(*observed, 7);
}

TEST(Lthread, TasksSpawnedDuringRunExecute) {
  Scheduler sched;
  bool inner_ran = false;
  sched.Spawn([&] { sched.Spawn([&] { inner_ran = true; }); });
  sched.Run();
  EXPECT_TRUE(inner_ran);
}

TEST(Lthread, DeepCallStacksWork) {
  Scheduler sched;
  // Recursion exercising a fair chunk of the coroutine stack.
  std::function<int(int)> fib = [&](int n) -> int {
    volatile char pad[256];  // consume stack
    pad[0] = 0;
    return n < 2 ? n : fib(n - 1) + fib(n - 2);
  };
  int result = 0;
  sched.Spawn([&] { result = fib(15); });
  sched.Run();
  EXPECT_EQ(result, 610);
}

// --- cross-thread wakeup (the reactor's poller -> shard-thread path) ---

TEST(LthreadCrossThread, WakeupFromAnotherThread) {
  Scheduler sched;
  std::atomic<bool> blocked{false};
  std::atomic<bool> done{false};
  Task* task = sched.Spawn([&] {
    blocked.store(true, std::memory_order_release);
    Scheduler::Block();
    done.store(true, std::memory_order_release);
  });
  std::thread waker([&] {
    while (!blocked.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    // Give the scheduler time to actually park in WaitForWork.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    sched.MakeRunnableFromAnyThread(task);
  });
  while (!done.load(std::memory_order_acquire)) {
    if (!sched.RunOnce()) {
      sched.WaitForWork();
    }
  }
  waker.join();
  EXPECT_EQ(sched.live_tasks(), 0u);
  while (sched.RunOnce()) {
  }
}

// Hammers the wake-before-block window: the waker races the task's park.
// Pre-wake-token schedulers lose wakeups that land between "decide to
// block" and "actually parked"; the per-task token makes them stick.
TEST(LthreadCrossThread, WakeBeforeBlockRaceLosesNoWakeups) {
  constexpr int kRounds = 2000;
  Scheduler sched;
  std::atomic<int> progress{0};
  Task* task = sched.Spawn([&] {
    for (int i = 0; i < kRounds; ++i) {
      Scheduler::Block();
      progress.fetch_add(1, std::memory_order_acq_rel);
    }
  });
  std::atomic<bool> stop{false};
  std::thread waker([&] {
    // No handshake with the task: wakes land at arbitrary points relative
    // to Block(), including before it (absorbed by the wake token).
    while (!stop.load(std::memory_order_acquire)) {
      sched.MakeRunnableFromAnyThread(task);
      std::this_thread::yield();
    }
  });
  while (progress.load(std::memory_order_acquire) < kRounds) {
    if (!sched.RunOnce()) {
      sched.WaitForWork();
    }
  }
  stop.store(true, std::memory_order_release);
  waker.join();
  EXPECT_EQ(progress.load(), kRounds);
  // Drain: the final wake may have re-queued the (now finished) task's
  // bookkeeping; RunOnce until idle must not crash or find stale state.
  while (sched.RunOnce()) {
  }
  EXPECT_EQ(sched.live_tasks(), 0u);
}

TEST(LthreadCrossThread, ManyTasksWokenFromManyThreads) {
  constexpr int kTasks = 32;
  constexpr int kRoundsPerTask = 50;
  Scheduler sched;
  std::vector<Task*> tasks;
  std::atomic<int> finished{0};
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(sched.Spawn([&] {
      for (int r = 0; r < kRoundsPerTask; ++r) {
        Scheduler::Block();
      }
      finished.fetch_add(1, std::memory_order_acq_rel);
    }));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> wakers;
  for (int w = 0; w < 3; ++w) {
    wakers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (Task* t : tasks) {
          sched.MakeRunnableFromAnyThread(t);
        }
        std::this_thread::yield();
      }
    });
  }
  while (finished.load(std::memory_order_acquire) < kTasks) {
    if (!sched.RunOnce()) {
      sched.WaitForWork();
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : wakers) {
    w.join();
  }
  while (sched.RunOnce()) {
  }
  EXPECT_EQ(sched.live_tasks(), 0u);
}

TEST(LthreadCrossThread, NotifyWakesWaitForWork) {
  Scheduler sched;
  std::atomic<bool> notified{false};
  std::thread notifier([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    notified.store(true, std::memory_order_release);
    sched.Notify();
  });
  // No tasks at all: WaitForWork must park until Notify, not spin or hang.
  sched.WaitForWork();
  EXPECT_TRUE(notified.load(std::memory_order_acquire));
  notifier.join();
}

}  // namespace
}  // namespace seal::lthread
