#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace seal {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(ToHex(b), "0001abff");
  EXPECT_EQ(FromHex("0001abff"), b);
}

TEST(Bytes, FromHexRejectsOddLength) { EXPECT_TRUE(FromHex("abc").empty()); }

TEST(Bytes, FromHexRejectsNonHex) { EXPECT_TRUE(FromHex("zz").empty()); }

TEST(Bytes, FromHexUppercase) { EXPECT_EQ(FromHex("AB"), Bytes{0xab}); }

TEST(Bytes, ToBytesAndBack) {
  std::string s = "hello";
  EXPECT_EQ(ToString(ToBytes(s)), s);
}

TEST(Bytes, BigEndian32) {
  uint8_t buf[4];
  StoreBe32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(LoadBe32(buf), 0x01020304u);
}

TEST(Bytes, BigEndian64) {
  uint8_t buf[8];
  StoreBe64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(LoadBe64(buf), 0x0102030405060708ULL);
}

TEST(Bytes, AppendBeWidths) {
  Bytes b;
  AppendBe16(b, 0x0102);
  AppendBe24(b, 0x030405);
  AppendBe32(b, 0x06070809);
  Bytes expected = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  EXPECT_EQ(b, expected);
}

TEST(Bytes, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesMessage) {
  Status s = InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Clock, NowNanosMonotonic) {
  int64_t a = NowNanos();
  int64_t b = NowNanos();
  EXPECT_LE(a, b);
}

TEST(Clock, SpinNanosTakesAtLeastThatLong) {
  int64_t start = NowNanos();
  SpinNanos(100000);  // 100 us
  EXPECT_GE(NowNanos() - start, 100000);
}

TEST(Clock, CycleConversionUsesReferenceFrequency) {
  // 3700 cycles at 3.7 GHz is 1000 ns.
  EXPECT_EQ(CycleSpinner::CyclesToNanos(3700), 1000);
}

TEST(Rng, Deterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, RangeInclusive) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(Rng, IdentHasRequestedLength) {
  SplitMix64 rng(2);
  EXPECT_EQ(rng.Ident(12).size(), 12u);
}

}  // namespace
}  // namespace seal
