#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/compress.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace seal {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(ToHex(b), "0001abff");
  EXPECT_EQ(FromHex("0001abff"), b);
}

TEST(Bytes, FromHexRejectsOddLength) { EXPECT_TRUE(FromHex("abc").empty()); }

TEST(Bytes, FromHexRejectsNonHex) { EXPECT_TRUE(FromHex("zz").empty()); }

TEST(Bytes, FromHexUppercase) { EXPECT_EQ(FromHex("AB"), Bytes{0xab}); }

TEST(Bytes, ToBytesAndBack) {
  std::string s = "hello";
  EXPECT_EQ(ToString(ToBytes(s)), s);
}

TEST(Bytes, BigEndian32) {
  uint8_t buf[4];
  StoreBe32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(LoadBe32(buf), 0x01020304u);
}

TEST(Bytes, BigEndian64) {
  uint8_t buf[8];
  StoreBe64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(LoadBe64(buf), 0x0102030405060708ULL);
}

TEST(Bytes, AppendBeWidths) {
  Bytes b;
  AppendBe16(b, 0x0102);
  AppendBe24(b, 0x030405);
  AppendBe32(b, 0x06070809);
  Bytes expected = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  EXPECT_EQ(b, expected);
}

TEST(Bytes, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesMessage) {
  Status s = InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Clock, NowNanosMonotonic) {
  int64_t a = NowNanos();
  int64_t b = NowNanos();
  EXPECT_LE(a, b);
}

TEST(Clock, SpinNanosTakesAtLeastThatLong) {
  int64_t start = NowNanos();
  SpinNanos(100000);  // 100 us
  EXPECT_GE(NowNanos() - start, 100000);
}

TEST(Clock, CycleConversionUsesReferenceFrequency) {
  // 3700 cycles at 3.7 GHz is 1000 ns.
  EXPECT_EQ(CycleSpinner::CyclesToNanos(3700), 1000);
}

TEST(Rng, Deterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, RangeInclusive) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

Bytes LzRoundTrip(BytesView in) {
  Bytes packed = LzCompress(in);
  auto out = LzDecompress(packed);
  EXPECT_TRUE(out.ok()) << out.status().message();
  return out.ok() ? *out : Bytes{};
}

TEST(Compress, RoundTripEmpty) { EXPECT_TRUE(LzRoundTrip({}).empty()); }

TEST(Compress, RoundTripShortLiteral) {
  const Bytes in = ToBytes("abc");
  EXPECT_EQ(LzRoundTrip(in), in);
}

TEST(Compress, RoundTripRepetitiveShrinks) {
  // Highly repetitive input must round-trip and actually compress; the
  // input ends mid-repetition, so the stream ends in a match followed by
  // the empty terminating literal token.
  Bytes in;
  for (int i = 0; i < 500; ++i) {
    Append(in, std::string_view("INSERT INTO updates VALUES "));
  }
  Bytes packed = LzCompress(in);
  EXPECT_LT(packed.size(), in.size() / 4);
  auto out = LzDecompress(packed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(Compress, RoundTripIncompressible) {
  SplitMix64 rng(7);
  Bytes in;
  in.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    in.push_back(static_cast<uint8_t>(rng.Next()));
  }
  EXPECT_EQ(LzRoundTrip(in), in);
}

TEST(Compress, RoundTripLongRuns) {
  // Runs longer than 15 exercise the 255-continuation length encoding on
  // both the literal and match sides.
  Bytes in(10000, 0x42);
  Bytes tail = ToBytes("unique-tail-no-repeat");
  in.insert(in.end(), tail.begin(), tail.end());
  EXPECT_EQ(LzRoundTrip(in), in);
}

TEST(Compress, DecodeRejectsTruncatedHeader) {
  EXPECT_FALSE(LzDecompress(Bytes{0x00, 0x01, 0x02}).ok());
}

TEST(Compress, DecodeRejectsOversizedDeclaredSize) {
  Bytes packed = LzCompress(ToBytes("hello"));
  EXPECT_FALSE(LzDecompress(packed, /*max_raw_size=*/4).ok());
  EXPECT_TRUE(LzDecompress(packed, /*max_raw_size=*/5).ok());
}

TEST(Compress, DecodeRejectsTruncationAtEveryBoundary) {
  Bytes in;
  for (int i = 0; i < 40; ++i) {
    Append(in, std::string_view("repeat-me "));
  }
  Bytes packed = LzCompress(in);
  for (size_t len = 0; len < packed.size(); ++len) {
    EXPECT_FALSE(LzDecompress(BytesView(packed).subspan(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(Compress, DecodeRejectsTrailingBytes) {
  Bytes packed = LzCompress(ToBytes("payload"));
  packed.push_back(0x00);
  auto out = LzDecompress(packed);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("trailing"), std::string::npos);
}

TEST(Compress, DecodeRejectsBadMatchOffset) {
  // raw size 8, one token: 4 literals then a match reaching back 9 bytes
  // -- past the start of the output produced so far.
  Bytes evil;
  AppendBe64(evil, 8);
  evil.push_back(0x40);  // 4 literals, match len 0 (+4 = 4)
  Append(evil, std::string_view("abcd"));
  AppendBe16(evil, 9);  // offset 9 > 4 bytes of output
  auto out = LzDecompress(evil);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("offset"), std::string::npos);

  // Offset zero is equally invalid.
  evil[evil.size() - 2] = 0;
  evil[evil.size() - 1] = 0;
  EXPECT_FALSE(LzDecompress(evil).ok());
}

TEST(Compress, DecodeRejectsShortOfDeclaredSize) {
  // Declares 100 raw bytes with an empty token stream.
  Bytes evil;
  AppendBe64(evil, 100);
  auto out = LzDecompress(evil);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("short of declared size"), std::string::npos);

  // A literal run that stops short of the declared size fails too (the
  // decoder expects a match to follow and runs out of bytes).
  Bytes evil2;
  AppendBe64(evil2, 100);
  evil2.push_back(0x30);  // 3 literals, no match
  Append(evil2, std::string_view("abc"));
  EXPECT_FALSE(LzDecompress(evil2).ok());
}

TEST(Compress, DecodeRejectsLiteralOverflowingDeclaredSize) {
  // Declares 2 raw bytes but the token carries 4 literals.
  Bytes evil;
  AppendBe64(evil, 2);
  evil.push_back(0x40);
  Append(evil, std::string_view("abcd"));
  EXPECT_FALSE(LzDecompress(evil).ok());
}

TEST(Rng, IdentHasRequestedLength) {
  SplitMix64 rng(2);
  EXPECT_EQ(rng.Ident(12).size(), 12u);
}

}  // namespace
}  // namespace seal
