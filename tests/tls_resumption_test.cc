#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/net/net.h"
#include "src/obs/obs.h"
#include "src/tls/session_cache.h"
#include "src/tls/tls.h"
#include "src/tls/x509.h"

namespace seal::tls {
namespace {

struct TestPki {
  TestPki() {
    ca = MakeSelfSignedCa("Resume CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
    server_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("server"));
    server_cert = IssueCertificate(ca, "server.example", server_key.public_key(), 2);
  }
  CertifiedKey ca;
  crypto::EcdsaPrivateKey server_key;
  Certificate server_cert;
};

TestPki& Pki() {
  static TestPki pki;
  return pki;
}

TlsConfig ServerConfig(TlsSessionCache* cache) {
  TlsConfig config;
  config.certificate = Pki().server_cert;
  config.private_key = Pki().server_key;
  config.session_cache = cache;
  return config;
}

TlsConfig ClientConfig() {
  TlsConfig config;
  config.trusted_roots = {Pki().ca.cert};
  return config;
}

struct HandshakeResult {
  Status client;
  Status server;
};

HandshakeResult DoHandshake(TlsConnection& client, TlsConnection& server) {
  HandshakeResult result{Internal("unset"), Internal("unset")};
  std::thread server_thread([&] { result.server = server.Handshake(); });
  result.client = client.Handshake();
  server_thread.join();
  return result;
}

// One client connection against `server_config`, optionally offering a
// session. Returns the exported session on success.
struct ConnectResult {
  HandshakeResult hs;
  bool client_resumed = false;
  bool server_resumed = false;
  Bytes client_session_id;
  Bytes server_session_id;
  TlsSession session;
};

ConnectResult Connect(const TlsConfig& client_config, const TlsConfig& server_config,
                      const TlsSession* offer = nullptr) {
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  if (offer != nullptr) {
    client.OfferSession(*offer);
  }
  ConnectResult result;
  result.hs = DoHandshake(client, server);
  if (result.hs.client.ok() && result.hs.server.ok()) {
    result.client_resumed = client.resumed();
    result.server_resumed = server.resumed();
    result.client_session_id = client.session_id();
    result.server_session_id = server.session_id();
    result.session = client.ExportSession();
    // Application data flows both ways on every path.
    std::thread echo([&] {
      uint8_t buf[64];
      auto n = server.Read(buf, sizeof(buf));
      ASSERT_TRUE(n.ok());
      ASSERT_TRUE(server.Write(BytesView(buf, *n)).ok());
    });
    EXPECT_TRUE(client.Write(std::string_view("ping")).ok());
    uint8_t buf[64];
    auto n = client.Read(buf, sizeof(buf));
    echo.join();
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(Bytes(buf, buf + *n), ToBytes("ping"));
  }
  client.Close();
  server.Close();
  return result;
}

uint64_t MissCounter(const char* reason) {
  return obs::Registry::Global().TakeSnapshot().counter(
      std::string("tls_resumption_misses_total{reason=\"") + reason + "\"}");
}

uint64_t ResumptionCounter() {
  return obs::Registry::Global().TakeSnapshot().counter("tls_resumptions_total");
}

TEST(Resumption, FullThenAbbreviated) {
  TlsSessionCache cache;
  TlsConfig server_config = ServerConfig(&cache);
  TlsConfig client_config = ClientConfig();

  ConnectResult full = Connect(client_config, server_config);
  ASSERT_TRUE(full.hs.client.ok()) << full.hs.client.ToString();
  ASSERT_TRUE(full.hs.server.ok()) << full.hs.server.ToString();
  EXPECT_FALSE(full.client_resumed);
  EXPECT_FALSE(full.server_resumed);
  ASSERT_TRUE(full.session.valid());
  EXPECT_EQ(cache.size(), 1u);

  uint64_t resumptions_before = ResumptionCounter();
  ConnectResult abbreviated = Connect(client_config, server_config, &full.session);
  ASSERT_TRUE(abbreviated.hs.client.ok()) << abbreviated.hs.client.ToString();
  ASSERT_TRUE(abbreviated.hs.server.ok()) << abbreviated.hs.server.ToString();
  EXPECT_TRUE(abbreviated.client_resumed);
  EXPECT_TRUE(abbreviated.server_resumed);
  EXPECT_EQ(ResumptionCounter(), resumptions_before + 1);
}

TEST(Resumption, ResumedSessionKeepsAttribution) {
  // session_id() keys the SSM audit log to a session; a resumed connection
  // must attribute to the SAME session as the original full handshake.
  TlsSessionCache cache;
  TlsConfig server_config = ServerConfig(&cache);
  TlsConfig client_config = ClientConfig();

  ConnectResult full = Connect(client_config, server_config);
  ASSERT_TRUE(full.hs.client.ok() && full.hs.server.ok());
  ConnectResult resumed = Connect(client_config, server_config, &full.session);
  ASSERT_TRUE(resumed.hs.client.ok() && resumed.hs.server.ok());
  ASSERT_TRUE(resumed.client_resumed);

  EXPECT_EQ(resumed.client_session_id, full.client_session_id);
  EXPECT_EQ(resumed.server_session_id, full.server_session_id);
  EXPECT_EQ(resumed.client_session_id, resumed.server_session_id);
  EXPECT_FALSE(resumed.client_session_id.empty());
}

TEST(Resumption, UnknownIdFallsBackToFullHandshake) {
  TlsSessionCache cache;
  TlsConfig server_config = ServerConfig(&cache);
  TlsConfig client_config = ClientConfig();

  TlsSession bogus;
  bogus.id = Bytes(16, 0xab);
  bogus.master_secret = Bytes(48, 0xcd);
  uint64_t unknown_before = MissCounter("unknown");
  ConnectResult result = Connect(client_config, server_config, &bogus);
  ASSERT_TRUE(result.hs.client.ok()) << result.hs.client.ToString();
  ASSERT_TRUE(result.hs.server.ok()) << result.hs.server.ToString();
  EXPECT_FALSE(result.client_resumed);
  EXPECT_FALSE(result.server_resumed);
  EXPECT_EQ(MissCounter("unknown"), unknown_before + 1);
}

TEST(Resumption, EvictedIdFallsBackToFullHandshake) {
  // Single-shard, capacity-1 cache: the second full handshake evicts the
  // first session, and the miss is attributed to eviction.
  TlsSessionCache cache(TlsSessionCache::Options{1, 0, 1});
  TlsConfig server_config = ServerConfig(&cache);
  TlsConfig client_config = ClientConfig();

  ConnectResult first = Connect(client_config, server_config);
  ASSERT_TRUE(first.hs.client.ok() && first.hs.server.ok());
  ConnectResult second = Connect(client_config, server_config);
  ASSERT_TRUE(second.hs.client.ok() && second.hs.server.ok());
  EXPECT_EQ(cache.size(), 1u);

  uint64_t evicted_before = MissCounter("evicted");
  ConnectResult result = Connect(client_config, server_config, &first.session);
  ASSERT_TRUE(result.hs.client.ok() && result.hs.server.ok());
  EXPECT_FALSE(result.client_resumed);
  EXPECT_EQ(MissCounter("evicted"), evicted_before + 1);
}

TEST(Resumption, ExpiredSessionFallsBackToFullHandshake) {
  // 1 ns TTL: every cached session is expired by the time it is offered.
  TlsSessionCache cache(TlsSessionCache::Options{16, 1, 1});
  TlsConfig server_config = ServerConfig(&cache);
  TlsConfig client_config = ClientConfig();

  ConnectResult full = Connect(client_config, server_config);
  ASSERT_TRUE(full.hs.client.ok() && full.hs.server.ok());

  uint64_t expired_before = MissCounter("expired");
  ConnectResult result = Connect(client_config, server_config, &full.session);
  ASSERT_TRUE(result.hs.client.ok() && result.hs.server.ok());
  EXPECT_FALSE(result.client_resumed);
  EXPECT_EQ(MissCounter("expired"), expired_before + 1);
}

TEST(Resumption, CacheDisabledFallsBackToFullHandshake) {
  TlsConfig server_config = ServerConfig(nullptr);
  TlsConfig client_config = ClientConfig();

  TlsSession offer;
  offer.id = Bytes(16, 0x11);
  offer.master_secret = Bytes(48, 0x22);
  uint64_t disabled_before = MissCounter("disabled");
  ConnectResult result = Connect(client_config, server_config, &offer);
  ASSERT_TRUE(result.hs.client.ok() && result.hs.server.ok());
  EXPECT_FALSE(result.client_resumed);
  EXPECT_FALSE(result.server_resumed);
  EXPECT_EQ(MissCounter("disabled"), disabled_before + 1);
}

TEST(Resumption, OversizedSessionIdRejected) {
  TlsSessionCache cache;
  TlsConfig server_config = ServerConfig(&cache);
  TlsConfig client_config = ClientConfig();

  TlsSession oversized;
  oversized.id = Bytes(kMaxSessionIdSize + 1, 0x5a);
  oversized.master_secret = Bytes(48, 0x77);
  ConnectResult result = Connect(client_config, server_config, &oversized);
  EXPECT_FALSE(result.hs.server.ok());
}

TEST(Resumption, WrongMasterSecretFailsAndDropsSession) {
  // Right id, wrong secret: the server starts the abbreviated handshake but
  // the Finished exchange cannot verify, and the probed session is dropped
  // from the cache.
  TlsSessionCache cache;
  TlsConfig server_config = ServerConfig(&cache);
  TlsConfig client_config = ClientConfig();

  ConnectResult full = Connect(client_config, server_config);
  ASSERT_TRUE(full.hs.client.ok() && full.hs.server.ok());
  ASSERT_EQ(cache.size(), 1u);

  TlsSession tampered = full.session;
  tampered.master_secret[0] ^= 0xff;
  ConnectResult result = Connect(client_config, server_config, &tampered);
  EXPECT_FALSE(result.hs.client.ok() || result.hs.server.ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Resumption, TamperedSessionIdIsUnknown) {
  TlsSessionCache cache;
  TlsConfig server_config = ServerConfig(&cache);
  TlsConfig client_config = ClientConfig();

  ConnectResult full = Connect(client_config, server_config);
  ASSERT_TRUE(full.hs.client.ok() && full.hs.server.ok());

  TlsSession tampered = full.session;
  tampered.id[0] ^= 0xff;
  // An id the server never issued cannot resume, but must not break the
  // fallback path either.
  ConnectResult result = Connect(client_config, server_config, &tampered);
  ASSERT_TRUE(result.hs.client.ok() && result.hs.server.ok());
  EXPECT_FALSE(result.client_resumed);
}

TEST(SessionCache, LruEvictionAndRefresh) {
  TlsSessionCache cache(TlsSessionCache::Options{2, 0, 1});
  Bytes secret(48, 0x01);
  cache.Insert(ToBytes("a"), secret);
  cache.Insert(ToBytes("b"), secret);
  // Touch "a" so "b" is the LRU victim when "c" arrives.
  EXPECT_TRUE(cache.Lookup(ToBytes("a")).has_value());
  cache.Insert(ToBytes("c"), secret);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(ToBytes("a")).has_value());
  EXPECT_TRUE(cache.Lookup(ToBytes("c")).has_value());
  SessionMissReason reason = SessionMissReason::kUnknown;
  EXPECT_FALSE(cache.Lookup(ToBytes("b"), &reason).has_value());
  EXPECT_EQ(reason, SessionMissReason::kEvicted);
}

TEST(SessionCache, RemoveAndOversizedIgnored) {
  TlsSessionCache cache;
  Bytes secret(48, 0x02);
  cache.Insert(ToBytes("key"), secret);
  EXPECT_EQ(cache.size(), 1u);
  cache.Remove(ToBytes("key"));
  EXPECT_EQ(cache.size(), 0u);
  cache.Insert(Bytes(kMaxSessionIdSize + 1, 0x00), secret);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Bytes(kMaxSessionIdSize + 1, 0x00)).has_value());
}

TEST(SessionCache, ConcurrentHammerIsSafe) {
  // 16 threads insert/lookup/remove overlapping keys; run under TSan in CI.
  TlsSessionCache cache(TlsSessionCache::Options{64, 0, 8});
  constexpr int kThreads = 16;
  constexpr int kOpsPerThread = 2000;
  std::atomic<uint64_t> hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(static_cast<uint64_t>(t) + 1);
      Bytes secret(48, static_cast<uint8_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t key_num = rng.Next() % 128;
        Bytes id(16, static_cast<uint8_t>(key_num));
        id[1] = static_cast<uint8_t>(key_num >> 8);
        switch (rng.Next() % 4) {
          case 0:
            cache.Insert(id, secret);
            break;
          case 1:
            cache.Remove(id);
            break;
          default:
            if (cache.Lookup(id).has_value()) {
              hits.fetch_add(1, std::memory_order_relaxed);
            }
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(hits.load(), 0u);
}

}  // namespace
}  // namespace seal::tls
