#include <gtest/gtest.h>

#include "src/db/database.h"
#include "src/db/parser.h"
#include "src/db/tokenizer.h"

namespace seal::db {
namespace {

// Helper: execute and expect success.
QueryResult Exec(Database& db, std::string_view sql) {
  auto r = db.Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  if (!r.ok()) {
    return QueryResult{};
  }
  return std::move(*r);
}

// --- tokenizer ---

TEST(Tokenizer, BasicSelect) {
  auto tokens = Tokenize("SELECT a FROM t WHERE x = 1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // incl. kEnd
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_TRUE((*tokens)[6].IsOperator("="));
  EXPECT_EQ((*tokens)[7].int_value, 1);
}

TEST(Tokenizer, StringEscapes) {
  auto tokens = Tokenize("SELECT 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "it's");
}

TEST(Tokenizer, UnterminatedString) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(Tokenizer, Comments) {
  auto tokens = Tokenize("SELECT 1 -- comment\n, 2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 5u);
}

TEST(Tokenizer, MultiCharOperators) {
  auto tokens = Tokenize("a != b <= c >= d <> e || f");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsOperator("!="));
  EXPECT_TRUE((*tokens)[3].IsOperator("<="));
  EXPECT_TRUE((*tokens)[5].IsOperator(">="));
  EXPECT_TRUE((*tokens)[7].IsOperator("!="));  // <> normalised
  EXPECT_TRUE((*tokens)[9].IsOperator("||"));
}

TEST(Tokenizer, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

// --- parser errors ---

TEST(Parser, RejectsGarbage) {
  EXPECT_FALSE(ParseStatement("FLY ME TO THE MOON").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1 EXTRA TOKENS HERE ARE BAD @").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES (1,").ok());
}

TEST(Parser, AcceptsTrailingSemicolon) {
  EXPECT_TRUE(ParseStatement("SELECT 1;").ok());
}

// --- DDL / DML basics ---

class DbTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(DbTest, CreateInsertSelect) {
  Exec(db_, "CREATE TABLE t(a, b, c)");
  Exec(db_, "INSERT INTO t VALUES (1, 'x', 2.5)");
  Exec(db_, "INSERT INTO t VALUES (2, 'y', 3.5), (3, 'z', 4.5)");
  QueryResult r = Exec(db_, "SELECT * FROM t");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.columns, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][1].AsText(), "y");
  EXPECT_DOUBLE_EQ(r.rows[2][2].AsReal(), 4.5);
}

TEST_F(DbTest, CreateTableTwiceFails) {
  Exec(db_, "CREATE TABLE t(a)");
  EXPECT_FALSE(db_.Execute("CREATE TABLE t(a)").ok());
  EXPECT_TRUE(db_.Execute("CREATE TABLE IF NOT EXISTS t(a)").ok());
}

TEST_F(DbTest, InsertWithColumnList) {
  Exec(db_, "CREATE TABLE t(a, b, c)");
  Exec(db_, "INSERT INTO t(c, a) VALUES (3, 1)");
  QueryResult r = Exec(db_, "SELECT a, b, c FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_EQ(r.rows[0][2].AsInt(), 3);
}

TEST_F(DbTest, InsertArityMismatch) {
  Exec(db_, "CREATE TABLE t(a, b)");
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO t(a) VALUES (1, 2)").ok());
}

TEST_F(DbTest, DeleteAll) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (2), (3)");
  QueryResult r = Exec(db_, "DELETE FROM t");
  EXPECT_EQ(r.affected, 3u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t").rows.size(), 0u);
}

TEST_F(DbTest, DeleteWhere) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (2), (3), (4)");
  QueryResult r = Exec(db_, "DELETE FROM t WHERE a % 2 = 0");
  EXPECT_EQ(r.affected, 2u);
  r = Exec(db_, "SELECT a FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

TEST_F(DbTest, DeleteWithSubqueryOverSameTable) {
  // This is exactly the shape of the paper's Git trimming query.
  Exec(db_, "CREATE TABLE updates(time, repo, branch, cid, type)");
  Exec(db_, "INSERT INTO updates VALUES (1, 'r', 'main', 'c1', 'update')");
  Exec(db_, "INSERT INTO updates VALUES (2, 'r', 'main', 'c2', 'update')");
  Exec(db_, "INSERT INTO updates VALUES (3, 'r', 'dev', 'c3', 'update')");
  QueryResult r = Exec(db_,
                       "DELETE FROM updates WHERE time NOT IN "
                       "(SELECT MAX(time) FROM updates GROUP BY repo, branch)");
  EXPECT_EQ(r.affected, 1u);  // only (1, main, c1) goes
  r = Exec(db_, "SELECT time FROM updates ORDER BY time");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

TEST_F(DbTest, Update) {
  Exec(db_, "CREATE TABLE t(a, b)");
  Exec(db_, "INSERT INTO t VALUES (1, 10), (2, 20)");
  QueryResult r = Exec(db_, "UPDATE t SET b = b + 1 WHERE a = 2");
  EXPECT_EQ(r.affected, 1u);
  r = Exec(db_, "SELECT b FROM t WHERE a = 2");
  EXPECT_EQ(r.rows[0][0].AsInt(), 21);
}

TEST_F(DbTest, DropTable) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "DROP TABLE t");
  EXPECT_FALSE(db_.Execute("SELECT * FROM t").ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE t").ok());
  EXPECT_TRUE(db_.Execute("DROP TABLE IF EXISTS t").ok());
}

// --- expressions ---

TEST_F(DbTest, ArithmeticAndPrecedence) {
  QueryResult r = Exec(db_, "SELECT 2 + 3 * 4, (2 + 3) * 4, 10 / 3, 10 % 3, -5 + 1");
  EXPECT_EQ(r.rows[0][0].AsInt(), 14);
  EXPECT_EQ(r.rows[0][1].AsInt(), 20);
  EXPECT_EQ(r.rows[0][2].AsInt(), 3);
  EXPECT_EQ(r.rows[0][3].AsInt(), 1);
  EXPECT_EQ(r.rows[0][4].AsInt(), -4);
}

TEST_F(DbTest, StringConcat) {
  QueryResult r = Exec(db_, "SELECT 'foo' || 'bar'");
  EXPECT_EQ(r.rows[0][0].AsText(), "foobar");
}

TEST_F(DbTest, DivisionByZeroIsNull) {
  QueryResult r = Exec(db_, "SELECT 1 / 0");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(DbTest, NullComparisons) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (NULL)");
  // NULL compares as unknown -> filtered out.
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE a = 1").rows.size(), 1u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE a != 1").rows.size(), 0u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE a IS NULL").rows.size(), 1u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE a IS NOT NULL").rows.size(), 1u);
}

TEST_F(DbTest, LikePatterns) {
  Exec(db_, "CREATE TABLE t(s)");
  Exec(db_, "INSERT INTO t VALUES ('hello'), ('help'), ('world')");
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE s LIKE 'hel%'").rows.size(), 2u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE s LIKE 'h_llo'").rows.size(), 1u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE s NOT LIKE 'hel%'").rows.size(), 1u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE s LIKE '%orl%'").rows.size(), 1u);
}

TEST_F(DbTest, Between) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (5), (10)");
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE a BETWEEN 2 AND 9").rows.size(), 1u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE a NOT BETWEEN 2 AND 9").rows.size(), 2u);
}

TEST_F(DbTest, InList) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (2), (3)");
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE a IN (1, 3)").rows.size(), 2u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE a NOT IN (1, 3)").rows.size(), 1u);
}

TEST_F(DbTest, ScalarFunctions) {
  QueryResult r = Exec(db_, "SELECT LENGTH('hello'), ABS(-4), SUBSTR('abcdef', 2, 3), "
                            "COALESCE(NULL, NULL, 7)");
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  EXPECT_EQ(r.rows[0][1].AsInt(), 4);
  EXPECT_EQ(r.rows[0][2].AsText(), "bcd");
  EXPECT_EQ(r.rows[0][3].AsInt(), 7);
}

TEST_F(DbTest, BooleanLogic) {
  Exec(db_, "CREATE TABLE t(a, b)");
  Exec(db_, "INSERT INTO t VALUES (1, 0), (1, 1), (0, 0)");
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE a = 1 AND b = 1").rows.size(), 1u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE a = 1 OR b = 1").rows.size(), 2u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM t WHERE NOT (a = 1)").rows.size(), 1u);
}

// --- joins ---

TEST_F(DbTest, InnerJoin) {
  Exec(db_, "CREATE TABLE a(id, x)");
  Exec(db_, "CREATE TABLE b(id, y)");
  Exec(db_, "INSERT INTO a VALUES (1, 'a1'), (2, 'a2')");
  Exec(db_, "INSERT INTO b VALUES (2, 'b2'), (3, 'b3')");
  QueryResult r = Exec(db_, "SELECT a.x, b.y FROM a JOIN b ON a.id = b.id");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "a2");
  EXPECT_EQ(r.rows[0][1].AsText(), "b2");
}

TEST_F(DbTest, CrossJoin) {
  Exec(db_, "CREATE TABLE a(x)");
  Exec(db_, "CREATE TABLE b(y)");
  Exec(db_, "INSERT INTO a VALUES (1), (2)");
  Exec(db_, "INSERT INTO b VALUES (10), (20), (30)");
  EXPECT_EQ(Exec(db_, "SELECT * FROM a CROSS JOIN b").rows.size(), 6u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM a, b").rows.size(), 6u);
}

TEST_F(DbTest, LeftJoin) {
  Exec(db_, "CREATE TABLE a(id)");
  Exec(db_, "CREATE TABLE b(id, y)");
  Exec(db_, "INSERT INTO a VALUES (1), (2)");
  Exec(db_, "INSERT INTO b VALUES (2, 'hit')");
  QueryResult r = Exec(db_, "SELECT a.id, b.y FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_EQ(r.rows[1][1].AsText(), "hit");
}

TEST_F(DbTest, NaturalJoin) {
  Exec(db_, "CREATE TABLE a(k, x)");
  Exec(db_, "CREATE TABLE b(k, y)");
  Exec(db_, "INSERT INTO a VALUES (1, 'x1'), (2, 'x2')");
  Exec(db_, "INSERT INTO b VALUES (2, 'y2'), (3, 'y3')");
  QueryResult r = Exec(db_, "SELECT * FROM a NATURAL JOIN b");
  ASSERT_EQ(r.rows.size(), 1u);
  // Common column appears once.
  EXPECT_EQ(r.columns, (std::vector<std::string>{"k", "x", "y"}));
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(DbTest, SelfJoinWithAliases) {
  Exec(db_, "CREATE TABLE t(id, v)");
  Exec(db_, "INSERT INTO t VALUES (1, 10), (2, 20)");
  QueryResult r = Exec(db_, "SELECT x.v, y.v FROM t x JOIN t y ON x.id < y.id");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
  EXPECT_EQ(r.rows[0][1].AsInt(), 20);
}

// --- aggregates / grouping ---

TEST_F(DbTest, AggregatesWholeTable) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (2), (3), (NULL)");
  QueryResult r = Exec(db_, "SELECT COUNT(*), COUNT(a), SUM(a), MAX(a), MIN(a), AVG(a) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
  EXPECT_EQ(r.rows[0][2].AsInt(), 6);
  EXPECT_EQ(r.rows[0][3].AsInt(), 3);
  EXPECT_EQ(r.rows[0][4].AsInt(), 1);
  EXPECT_DOUBLE_EQ(r.rows[0][5].AsReal(), 2.0);
}

TEST_F(DbTest, AggregatesEmptyTable) {
  Exec(db_, "CREATE TABLE t(a)");
  QueryResult r = Exec(db_, "SELECT COUNT(*), MAX(a), SUM(a) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(DbTest, GroupBy) {
  Exec(db_, "CREATE TABLE t(k, v)");
  Exec(db_, "INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 5)");
  QueryResult r = Exec(db_, "SELECT k, SUM(v) AS total FROM t GROUP BY k ORDER BY k");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.columns[1], "total");
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
  EXPECT_EQ(r.rows[1][1].AsInt(), 5);
}

TEST_F(DbTest, GroupByHaving) {
  Exec(db_, "CREATE TABLE t(k, v)");
  Exec(db_, "INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 5), ('c', 1)");
  QueryResult r = Exec(db_, "SELECT k FROM t GROUP BY k HAVING COUNT(*) > 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "a");
}

TEST_F(DbTest, CountDistinct) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (1), (2), (NULL)");
  QueryResult r = Exec(db_, "SELECT COUNT(DISTINCT a) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

// --- distinct / order / limit ---

TEST_F(DbTest, Distinct) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (1), (2)");
  EXPECT_EQ(Exec(db_, "SELECT DISTINCT a FROM t").rows.size(), 2u);
}

TEST_F(DbTest, OrderByDesc) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (2), (1), (3)");
  QueryResult r = Exec(db_, "SELECT a FROM t ORDER BY a DESC");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[2][0].AsInt(), 1);
}

TEST_F(DbTest, OrderByMultipleKeys) {
  Exec(db_, "CREATE TABLE t(a, b)");
  Exec(db_, "INSERT INTO t VALUES (1, 2), (1, 1), (0, 9)");
  QueryResult r = Exec(db_, "SELECT a, b FROM t ORDER BY a, b DESC");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_EQ(r.rows[1][1].AsInt(), 2);
  EXPECT_EQ(r.rows[2][1].AsInt(), 1);
}

TEST_F(DbTest, OrderByPosition) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (2), (1)");
  QueryResult r = Exec(db_, "SELECT a FROM t ORDER BY 1");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(DbTest, LimitOffset) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  QueryResult r = Exec(db_, "SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

// --- subqueries ---

TEST_F(DbTest, ScalarSubquery) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (5), (3)");
  QueryResult r = Exec(db_, "SELECT (SELECT MAX(a) FROM t)");
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
}

TEST_F(DbTest, CorrelatedScalarSubquery) {
  Exec(db_, "CREATE TABLE emp(dept, salary)");
  Exec(db_, "INSERT INTO emp VALUES ('x', 10), ('x', 20), ('y', 5)");
  // Employees earning the max of their department.
  QueryResult r = Exec(db_,
                       "SELECT dept, salary FROM emp e WHERE salary = "
                       "(SELECT MAX(salary) FROM emp WHERE dept = e.dept) ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 20);
  EXPECT_EQ(r.rows[1][1].AsInt(), 5);
}

TEST_F(DbTest, InSubquery) {
  Exec(db_, "CREATE TABLE a(x)");
  Exec(db_, "CREATE TABLE b(x)");
  Exec(db_, "INSERT INTO a VALUES (1), (2), (3)");
  Exec(db_, "INSERT INTO b VALUES (2), (3), (4)");
  EXPECT_EQ(Exec(db_, "SELECT * FROM a WHERE x IN (SELECT x FROM b)").rows.size(), 2u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM a WHERE x NOT IN (SELECT x FROM b)").rows.size(), 1u);
}

TEST_F(DbTest, ExistsSubquery) {
  Exec(db_, "CREATE TABLE a(x)");
  Exec(db_, "CREATE TABLE b(x)");
  Exec(db_, "INSERT INTO a VALUES (1), (2)");
  Exec(db_, "INSERT INTO b VALUES (2)");
  EXPECT_EQ(Exec(db_, "SELECT * FROM a WHERE EXISTS (SELECT * FROM b WHERE b.x = a.x)").rows.size(),
            1u);
  EXPECT_EQ(
      Exec(db_, "SELECT * FROM a WHERE NOT EXISTS (SELECT * FROM b WHERE b.x = a.x)").rows.size(),
      1u);
}

TEST_F(DbTest, DerivedTable) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (2), (3)");
  QueryResult r = Exec(db_, "SELECT s.m FROM (SELECT MAX(a) AS m FROM t) s");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

// --- views ---

TEST_F(DbTest, ViewBasic) {
  Exec(db_, "CREATE TABLE t(a, b)");
  Exec(db_, "INSERT INTO t VALUES (1, 10), (2, 20)");
  Exec(db_, "CREATE VIEW v AS SELECT a, b * 2 AS bb FROM t");
  QueryResult r = Exec(db_, "SELECT bb FROM v WHERE a = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 40);
}

TEST_F(DbTest, ViewReflectsUpdates) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "CREATE VIEW v AS SELECT COUNT(*) AS n FROM t");
  EXPECT_EQ(Exec(db_, "SELECT n FROM v").rows[0][0].AsInt(), 0);
  Exec(db_, "INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(Exec(db_, "SELECT n FROM v").rows[0][0].AsInt(), 2);
}

TEST_F(DbTest, DropView) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "CREATE VIEW v AS SELECT * FROM t");
  Exec(db_, "DROP VIEW v");
  EXPECT_FALSE(db_.Execute("SELECT * FROM v").ok());
}

// --- the exact paper queries (Git schema) ---

class GitInvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec(db_, "CREATE TABLE updates(time, repo, branch, cid, type)");
    Exec(db_, "CREATE TABLE advertisements(time, repo, branch, cid)");
    Exec(db_,
         "CREATE VIEW branchcnt AS "
         "SELECT DISTINCT a.time,a.repo,COUNT(u.branch) AS cnt "
         "FROM advertisements a "
         "JOIN updates u ON u.time < a.time AND u.repo = a.repo "
         "WHERE u.type != 'delete' AND u.time = (SELECT MAX(time) "
         "FROM updates WHERE branch = u.branch "
         "AND repo = u.repo AND time < a.time) GROUP BY a.time,a.repo,a.branch");
  }

  QueryResult Soundness() {
    return Exec(db_,
                "SELECT * FROM advertisements a WHERE cid != ("
                "SELECT u.cid FROM updates u WHERE u.repo = a.repo AND "
                "u.branch = a.branch AND u.time < a.time ORDER BY "
                "u.time DESC LIMIT 1)");
  }

  QueryResult Completeness() {
    return Exec(db_,
                "SELECT time, repo FROM advertisements "
                "NATURAL JOIN branchcnt "
                "GROUP BY time, repo, cnt HAVING COUNT(branch) != cnt");
  }

  Database db_;
};

TEST_F(GitInvariantTest, CleanHistoryHasNoViolations) {
  Exec(db_, "INSERT INTO updates VALUES (1, 'r', 'main', 'c1', 'update')");
  Exec(db_, "INSERT INTO updates VALUES (2, 'r', 'dev', 'c2', 'update')");
  // Advertisement at time 3 reflects both branches at their latest commits.
  Exec(db_, "INSERT INTO advertisements VALUES (3, 'r', 'main', 'c1')");
  Exec(db_, "INSERT INTO advertisements VALUES (3, 'r', 'dev', 'c2')");
  EXPECT_TRUE(Soundness().rows.empty());
  EXPECT_TRUE(Completeness().rows.empty());
}

TEST_F(GitInvariantTest, RollbackAttackDetectedBySoundness) {
  Exec(db_, "INSERT INTO updates VALUES (1, 'r', 'main', 'c1', 'update')");
  Exec(db_, "INSERT INTO updates VALUES (2, 'r', 'main', 'c2', 'update')");
  // Server advertises the OLD commit c1: rollback.
  Exec(db_, "INSERT INTO advertisements VALUES (3, 'r', 'main', 'c1')");
  QueryResult r = Soundness();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(GitInvariantTest, ReferenceDeletionDetectedByCompleteness) {
  Exec(db_, "INSERT INTO updates VALUES (1, 'r', 'main', 'c1', 'update')");
  Exec(db_, "INSERT INTO updates VALUES (2, 'r', 'dev', 'c2', 'update')");
  // Advertisement at time 3 omits branch 'dev': reference deletion.
  Exec(db_, "INSERT INTO advertisements VALUES (3, 'r', 'main', 'c1')");
  QueryResult r = Completeness();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[0][1].AsText(), "r");
}

TEST_F(GitInvariantTest, LegitimateDeleteIsNotAViolation) {
  Exec(db_, "INSERT INTO updates VALUES (1, 'r', 'main', 'c1', 'update')");
  Exec(db_, "INSERT INTO updates VALUES (2, 'r', 'dev', 'c2', 'update')");
  Exec(db_, "INSERT INTO updates VALUES (3, 'r', 'dev', 'c2', 'delete')");
  // After the delete, advertising only main is correct.
  Exec(db_, "INSERT INTO advertisements VALUES (4, 'r', 'main', 'c1')");
  EXPECT_TRUE(Completeness().rows.empty());
}

TEST_F(GitInvariantTest, TrimmingPreservesInvariantChecking) {
  Exec(db_, "INSERT INTO updates VALUES (1, 'r', 'main', 'c1', 'update')");
  Exec(db_, "INSERT INTO updates VALUES (2, 'r', 'main', 'c2', 'update')");
  Exec(db_, "INSERT INTO advertisements VALUES (3, 'r', 'main', 'c2')");
  EXPECT_TRUE(Soundness().rows.empty());
  // Paper's trimming queries.
  Exec(db_, "DELETE FROM advertisements");
  Exec(db_,
       "DELETE FROM updates WHERE time NOT IN "
       "(SELECT MAX(time) FROM updates GROUP BY repo, branch)");
  EXPECT_EQ(Exec(db_, "SELECT * FROM updates").rows.size(), 1u);
  // New advertisement of the retained update is still sound; a rollback to
  // the trimmed c1 is still detected.
  Exec(db_, "INSERT INTO advertisements VALUES (4, 'r', 'main', 'c2')");
  EXPECT_TRUE(Soundness().rows.empty());
  Exec(db_, "INSERT INTO advertisements VALUES (5, 'r', 'main', 'c1')");
  EXPECT_EQ(Soundness().rows.size(), 1u);
}

// --- serialisation ---

TEST_F(DbTest, SerializeRoundTrip) {
  Exec(db_, "CREATE TABLE t(a, b, c)");
  Exec(db_, "INSERT INTO t VALUES (1, 'x', 2.5), (NULL, 'y', 3.5)");
  Exec(db_, "CREATE VIEW v AS SELECT COUNT(*) AS n FROM t");
  Bytes image = db_.Serialize();
  auto restored = Database::Deserialize(image);
  ASSERT_TRUE(restored.ok());
  QueryResult r = Exec(*restored, "SELECT * FROM t");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[1][0].is_null());
  EXPECT_EQ(r.rows[0][1].AsText(), "x");
  EXPECT_EQ(Exec(*restored, "SELECT n FROM v").rows[0][0].AsInt(), 2);
}

TEST_F(DbTest, DeserializeRejectsTruncated) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1)");
  Bytes image = db_.Serialize();
  for (size_t cut : {1u, 5u, 9u}) {
    if (cut < image.size()) {
      EXPECT_FALSE(Database::Deserialize(BytesView(image.data(), image.size() - cut)).ok());
    }
  }
}

// --- programmatic API ---

TEST_F(DbTest, ProgrammaticInsert) {
  ASSERT_TRUE(db_.CreateTable("t", {"a", "b"}).ok());
  ASSERT_TRUE(db_.InsertRow("t", {Value(static_cast<int64_t>(1)), Value(std::string("x"))}).ok());
  EXPECT_FALSE(db_.InsertRow("t", {Value(static_cast<int64_t>(1))}).ok());  // arity
  EXPECT_FALSE(db_.InsertRow("nope", {}).ok());
  EXPECT_EQ(db_.TableSize("t"), 1u);
  EXPECT_TRUE(db_.HasTable("t"));
  EXPECT_FALSE(db_.HasTable("nope"));
}

}  // namespace
}  // namespace seal::db
