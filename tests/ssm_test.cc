// SSM tests: drive each service's handler directly (no TLS), feed the
// request/response pairs through an AuditLogger, and check that each
// paper-named attack is detected while clean runs stay clean.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/logger.h"
#include "src/services/dropbox_service.h"
#include "src/services/git_service.h"
#include "src/services/owncloud_service.h"
#include "src/ssm/dropbox_ssm.h"
#include "src/ssm/git_ssm.h"
#include "src/ssm/owncloud_ssm.h"

namespace seal::ssm {
namespace {

using core::AuditLogOptions;
using core::AuditLogger;
using core::CheckReport;
using core::LoggerOptions;

template <typename Module>
std::unique_ptr<AuditLogger> MakeLogger(size_t check_interval = 0) {
  AuditLogOptions log_options;
  log_options.counter_options.inject_latency = false;
  LoggerOptions logger_options;
  logger_options.check_interval = check_interval;
  // SSM tests assert on the reports OnPair returns for interval checks,
  // which only synchronous checking produces.
  logger_options.async_checking = false;
  auto logger = std::make_unique<AuditLogger>(
      std::make_unique<Module>(), log_options, logger_options,
      crypto::EcdsaPrivateKey::FromSeed(ToBytes("ssm-test")));
  EXPECT_TRUE(logger->Init().ok());
  return logger;
}

// Runs one request through the service and the logger.
template <typename Service>
void Pump(Service& service, AuditLogger& logger, const http::HttpRequest& request) {
  http::HttpResponse response = service.Handle(request);
  auto r = logger.OnPair(request.Serialize(), response.Serialize(), false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

// --- Git ---

class GitSsmTest : public ::testing::Test {
 protected:
  void Replay(int pushes) {
    for (int i = 1; i <= pushes; ++i) {
      Pump(backend_, *logger_,
           services::MakeGitPush("repo", {{"main", "c" + std::to_string(i)}}));
    }
  }

  CheckReport Check() {
    auto report = logger_->CheckInvariants();
    EXPECT_TRUE(report.ok());
    return *report;
  }

  services::GitBackend backend_;
  std::unique_ptr<AuditLogger> logger_ = MakeLogger<GitModule>();
};

TEST_F(GitSsmTest, ParsesPushAndAdvertisement) {
  Pump(backend_, *logger_, services::MakeGitPush("repo", {{"main", "c1"}, {"dev", "c2"}}));
  Pump(backend_, *logger_, services::MakeGitFetch("repo"));
  auto updates = logger_->log().Query("SELECT repo, branch, cid, type FROM updates ORDER BY branch");
  ASSERT_TRUE(updates.ok());
  ASSERT_EQ(updates->rows.size(), 2u);
  EXPECT_EQ(updates->rows[0][1].AsText(), "dev");
  EXPECT_EQ(updates->rows[1][2].AsText(), "c1");
  auto ads = logger_->log().Query("SELECT branch FROM advertisements");
  ASSERT_TRUE(ads.ok());
  EXPECT_EQ(ads->rows.size(), 2u);
}

TEST_F(GitSsmTest, CleanRunHasNoViolations) {
  Replay(5);
  Pump(backend_, *logger_, services::MakeGitFetch("repo"));
  CheckReport report = Check();
  EXPECT_TRUE(report.clean()) << report.Summary();
}

TEST_F(GitSsmTest, RollbackAttackDetected) {
  Replay(3);
  backend_.set_attack(services::GitBackend::Attack::kRollback);
  Pump(backend_, *logger_, services::MakeGitFetch("repo"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].invariant, "git-soundness");
}

TEST_F(GitSsmTest, TeleportAttackDetected) {
  Pump(backend_, *logger_, services::MakeGitPush("repo", {{"main", "c1"}}));
  Pump(backend_, *logger_, services::MakeGitPush("repo", {{"dev", "c2"}}));
  backend_.set_attack(services::GitBackend::Attack::kTeleport);
  Pump(backend_, *logger_, services::MakeGitFetch("repo"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].invariant, "git-soundness");
}

TEST_F(GitSsmTest, ReferenceDeletionDetected) {
  Pump(backend_, *logger_, services::MakeGitPush("repo", {{"main", "c1"}}));
  Pump(backend_, *logger_, services::MakeGitPush("repo", {{"dev", "c2"}}));
  backend_.set_attack(services::GitBackend::Attack::kRefDeletion);
  Pump(backend_, *logger_, services::MakeGitFetch("repo"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].invariant, "git-completeness");
}

TEST_F(GitSsmTest, LegitimateDeletionIsClean) {
  Pump(backend_, *logger_, services::MakeGitPush("repo", {{"main", "c1"}, {"dev", "c2"}}));
  Pump(backend_, *logger_, services::MakeGitPush("repo", {}, {"dev"}));
  Pump(backend_, *logger_, services::MakeGitFetch("repo"));
  CheckReport report = Check();
  EXPECT_TRUE(report.clean()) << report.Summary();
}

TEST_F(GitSsmTest, TrimmingKeepsDetectionWorking) {
  Replay(4);
  Pump(backend_, *logger_, services::MakeGitFetch("repo"));
  ASSERT_TRUE(logger_->Trim().ok());
  // Post-trim rollback still caught: the latest update was retained.
  backend_.set_attack(services::GitBackend::Attack::kRollback);
  Pump(backend_, *logger_, services::MakeGitFetch("repo"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
}

TEST_F(GitSsmTest, IntervalCheckFiresAutomatically) {
  auto logger = MakeLogger<GitModule>(/*check_interval=*/3);
  services::GitBackend backend;
  http::HttpResponse rsp;
  int checks_seen = 0;
  for (int i = 1; i <= 9; ++i) {
    auto req = services::MakeGitPush("repo", {{"main", "c" + std::to_string(i)}});
    rsp = backend.Handle(req);
    auto r = logger->OnPair(req.Serialize(), rsp.Serialize(), false);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) {
      ++checks_seen;
    }
  }
  EXPECT_EQ(checks_seen, 3);
}

// --- ownCloud ---

class OwnCloudSsmTest : public ::testing::Test {
 protected:
  CheckReport Check() {
    auto report = logger_->CheckInvariants();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return *report;
  }

  services::OwnCloudService service_;
  std::unique_ptr<AuditLogger> logger_ = MakeLogger<OwnCloudModule>();
};

TEST_F(OwnCloudSsmTest, CleanSessionIsClean) {
  Pump(service_, *logger_, services::MakeOwnCloudSync("doc", 0, "alice", 1, "hello"));
  Pump(service_, *logger_, services::MakeOwnCloudSync("doc", 0, "bob", 1, " world"));
  Pump(service_, *logger_, services::MakeOwnCloudSnapshot("doc", 0, "alice", "hello world"));
  Pump(service_, *logger_, services::MakeOwnCloudJoin("doc", "carol"));
  CheckReport report = Check();
  EXPECT_TRUE(report.clean()) << report.Summary();
}

TEST_F(OwnCloudSsmTest, LostEditDetected) {
  Pump(service_, *logger_, services::MakeOwnCloudSync("doc", 0, "alice", 1, "a"));
  Pump(service_, *logger_, services::MakeOwnCloudSync("doc", 0, "alice", 2, "b"));
  service_.set_attack(services::OwnCloudService::Attack::kDropUpdate);
  Pump(service_, *logger_, services::MakeOwnCloudJoin("doc", "bob"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].invariant, "owncloud-update-prefix");
}

TEST_F(OwnCloudSsmTest, StaleSnapshotDetected) {
  Pump(service_, *logger_, services::MakeOwnCloudSnapshot("doc", 0, "alice", "v1"));
  Pump(service_, *logger_, services::MakeOwnCloudSnapshot("doc", 0, "alice", "v2"));
  service_.set_attack(services::OwnCloudService::Attack::kStaleSnapshot);
  Pump(service_, *logger_, services::MakeOwnCloudJoin("doc", "bob"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].invariant, "owncloud-snapshot-match");
}

TEST_F(OwnCloudSsmTest, MultipleDocumentsIndependent) {
  Pump(service_, *logger_, services::MakeOwnCloudSync("doc-a", 0, "alice", 1, "x"));
  Pump(service_, *logger_, services::MakeOwnCloudSync("doc-b", 0, "bob", 1, "y"));
  Pump(service_, *logger_, services::MakeOwnCloudJoin("doc-a", "carol"));
  Pump(service_, *logger_, services::MakeOwnCloudJoin("doc-b", "carol"));
  EXPECT_TRUE(Check().clean());
}

TEST_F(OwnCloudSsmTest, TrimmingKeepsLatestSessionData) {
  Pump(service_, *logger_, services::MakeOwnCloudSync("doc", 0, "alice", 1, "x"));
  Pump(service_, *logger_, services::MakeOwnCloudSnapshot("doc", 0, "alice", "x"));
  Pump(service_, *logger_, services::MakeOwnCloudJoin("doc", "bob"));
  ASSERT_TRUE(logger_->Trim().ok());
  EXPECT_EQ(logger_->log().database().TableSize("oc_joins"), 0u);
  EXPECT_EQ(logger_->log().database().TableSize("oc_snapshots"), 1u);
  // Detection still works after trimming.
  service_.set_attack(services::OwnCloudService::Attack::kDropUpdate);
  Pump(service_, *logger_, services::MakeOwnCloudJoin("doc", "dave"));
  EXPECT_FALSE(Check().clean());
}

// --- Dropbox ---

class DropboxSsmTest : public ::testing::Test {
 protected:
  CheckReport Check() {
    auto report = logger_->CheckInvariants();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return *report;
  }

  services::DropboxService service_;
  std::unique_ptr<AuditLogger> logger_ = MakeLogger<DropboxModule>();
};

TEST_F(DropboxSsmTest, CleanChurnIsClean) {
  Pump(service_, *logger_,
       services::MakeCommitBatch("acct", "h1", {{"a.txt", "bl-a1", 100}, {"b.txt", "bl-b1", 200}}));
  Pump(service_, *logger_, services::MakeListRequest("acct"));
  Pump(service_, *logger_, services::MakeCommitBatch("acct", "h1", {{"a.txt", "bl-a2", 150}}));
  Pump(service_, *logger_, services::MakeListRequest("acct"));
  CheckReport report = Check();
  EXPECT_TRUE(report.clean()) << report.Summary();
}

TEST_F(DropboxSsmTest, DeletionReflectedInList) {
  Pump(service_, *logger_, services::MakeCommitBatch("acct", "h1", {{"a.txt", "bl-a", 100}}));
  Pump(service_, *logger_, services::MakeCommitBatch("acct", "h1", {{"a.txt", "", -1}}));
  Pump(service_, *logger_, services::MakeListRequest("acct"));
  EXPECT_TRUE(Check().clean());
}

TEST_F(DropboxSsmTest, CorruptBlocklistDetected) {
  Pump(service_, *logger_, services::MakeCommitBatch("acct", "h1", {{"a.txt", "bl-a", 100}}));
  service_.set_attack(services::DropboxService::Attack::kCorruptBlocklist);
  Pump(service_, *logger_, services::MakeListRequest("acct"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].invariant, "dropbox-blocklist-soundness");
}

TEST_F(DropboxSsmTest, OmittedFileDetected) {
  Pump(service_, *logger_,
       services::MakeCommitBatch("acct", "h1", {{"a.txt", "bl-a", 100}, {"b.txt", "bl-b", 200}}));
  service_.set_attack(services::DropboxService::Attack::kOmitFile);
  Pump(service_, *logger_, services::MakeListRequest("acct"));
  CheckReport report = Check();
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].invariant, "dropbox-list-completeness");
}

TEST_F(DropboxSsmTest, TrimmingKeepsLatestCommitPerFile) {
  Pump(service_, *logger_, services::MakeCommitBatch("acct", "h1", {{"a.txt", "bl-1", 100}}));
  Pump(service_, *logger_, services::MakeCommitBatch("acct", "h1", {{"a.txt", "bl-2", 100}}));
  Pump(service_, *logger_, services::MakeListRequest("acct"));
  ASSERT_TRUE(logger_->Trim().ok());
  auto rows = logger_->log().Query("SELECT blocks FROM commit_batch");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsText(), "bl-2");
  // Post-trim detection still works.
  service_.set_attack(services::DropboxService::Attack::kCorruptBlocklist);
  Pump(service_, *logger_, services::MakeListRequest("acct"));
  EXPECT_FALSE(Check().clean());
}

TEST_F(DropboxSsmTest, WorkloadDrivesServiceWithoutViolations) {
  auto logger = MakeLogger<DropboxModule>(/*check_interval=*/20);
  services::DropboxService service;
  services::DropboxWorkload workload("acct", 7);
  for (int i = 0; i < 100; ++i) {
    auto req = workload.Next();
    auto rsp = service.Handle(req);
    auto r = logger->OnPair(req.Serialize(), rsp.Serialize(), false);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) {
      EXPECT_TRUE((*r)->clean()) << (*r)->Summary();
    }
  }
}

}  // namespace
}  // namespace seal::ssm
