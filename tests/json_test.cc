#include <gtest/gtest.h>

#include "src/json/json.h"

namespace seal::json {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("3.25")->AsNumber(), 3.25);
  EXPECT_EQ(Parse("-17")->AsInt(), -17);
  EXPECT_EQ(Parse("\"hi\"")->AsString(), "hi");
}

TEST(Json, ParseNested) {
  auto v = Parse(R"({"a": [1, 2, {"b": "x"}], "c": null})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Get("a").AsArray().size(), 3u);
  EXPECT_EQ(v->Get("a").AsArray()[2].Get("b").AsString(), "x");
  EXPECT_TRUE(v->Get("c").is_null());
  EXPECT_TRUE(v->Has("c"));
  EXPECT_FALSE(v->Has("d"));
  EXPECT_TRUE(v->Get("d").is_null());
}

TEST(Json, StringEscapes) {
  auto v = Parse(R"("line\nbreak \"quoted\" tab\t back\\slash A")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "line\nbreak \"quoted\" tab\t back\\slash A");
}

TEST(Json, DumpRoundTrip) {
  JsonValue original = Obj({
      {"name", "doc1"},
      {"version", 3},
      {"tags", Arr({JsonValue("a"), JsonValue("b")})},
      {"meta", Obj({{"deleted", false}, {"score", 1.5}})},
  });
  std::string dumped = original.Dump();
  auto reparsed = Parse(dumped);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), dumped);
  EXPECT_EQ(reparsed->Get("version").AsInt(), 3);
  EXPECT_EQ(reparsed->Get("meta").Get("score").AsNumber(), 1.5);
}

TEST(Json, DumpEscapesControlCharacters) {
  JsonValue v("a\"b\\c\nd");
  auto reparsed = Parse(v.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->AsString(), "a\"b\\c\nd");
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("nul").ok());
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(Parse("[]")->AsArray().empty());
  EXPECT_TRUE(Parse("{}")->AsObject().empty());
  EXPECT_EQ(Parse("[]")->Dump(), "[]");
  EXPECT_EQ(Parse("{}")->Dump(), "{}");
}

TEST(Json, WhitespaceTolerant) {
  auto v = Parse("  {  \"a\" :\n[ 1 ,\t2 ]  }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Get("a").AsArray().size(), 2u);
}

TEST(Json, IntegerPreservedInDump) {
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(-1).Dump(), "-1");
}

TEST(Json, DeepNestingRejectedNotCrashed) {
  // Recursion per nesting level: unbounded depth overflowed the stack on
  // hostile input before the parser grew its depth cap.
  std::string deep(100000, '[');
  EXPECT_FALSE(Parse(deep).ok());
  std::string deep_objects;
  for (int i = 0; i < 100000; ++i) {
    deep_objects += "{\"a\":";
  }
  EXPECT_FALSE(Parse(deep_objects).ok());
  // Reasonable nesting still parses.
  std::string ok_depth = std::string(50, '[') + "1" + std::string(50, ']');
  EXPECT_TRUE(Parse(ok_depth).ok());
}

}  // namespace
}  // namespace seal::json
