#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "src/common/clock.h"
#include "src/json/json.h"
#include "src/obs/obs.h"
#include "src/services/dropbox_service.h"
#include "src/services/git_service.h"
#include "src/services/http_server.h"
#include "src/services/https_client.h"
#include "src/services/owncloud_service.h"
#include "src/services/proxy.h"
#include "src/services/static_content.h"
#include "src/tls/x509.h"

namespace seal::services {
namespace {

struct Pki {
  Pki() {
    ca = tls::MakeSelfSignedCa("Services CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
    server_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("srv"));
    server_cert = tls::IssueCertificate(ca, "server", server_key.public_key(), 2);
  }
  tls::CertifiedKey ca;
  crypto::EcdsaPrivateKey server_key;
  tls::Certificate server_cert;
};

Pki& GetPki() {
  static Pki pki;
  return pki;
}

tls::TlsConfig ServerTlsConfig() {
  tls::TlsConfig config;
  config.certificate = GetPki().server_cert;
  config.private_key = GetPki().server_key;
  return config;
}

tls::TlsConfig ClientTlsConfig() {
  tls::TlsConfig config;
  config.trusted_roots = {GetPki().ca.cert};
  return config;
}

// --- service handler unit behaviour ---

TEST(GitBackend, PushThenFetch) {
  GitBackend backend;
  backend.Handle(MakeGitPush("r", {{"main", "c1"}, {"dev", "c2"}}));
  http::HttpResponse rsp = backend.Handle(MakeGitFetch("r"));
  auto refs = ParseAdvertisement(rsp.body);
  EXPECT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs["main"], "c1");
}

TEST(GitBackend, DeleteRemovesRef) {
  GitBackend backend;
  backend.Handle(MakeGitPush("r", {{"main", "c1"}, {"dev", "c2"}}));
  backend.Handle(MakeGitPush("r", {}, {"dev"}));
  auto refs = ParseAdvertisement(backend.Handle(MakeGitFetch("r")).body);
  EXPECT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs.count("dev"), 0u);
}

TEST(GitBackend, UnknownRepoIs404) {
  GitBackend backend;
  EXPECT_EQ(backend.Handle(MakeGitFetch("ghost")).status, 404);
}

TEST(GitBackend, RollbackAttackServesOldCommit) {
  GitBackend backend;
  backend.Handle(MakeGitPush("r", {{"main", "c1"}}));
  backend.Handle(MakeGitPush("r", {{"main", "c2"}}));
  backend.set_attack(GitBackend::Attack::kRollback);
  auto refs = ParseAdvertisement(backend.Handle(MakeGitFetch("r")).body);
  EXPECT_EQ(refs["main"], "c1");  // stale
  // The authoritative store is untouched: only the advertisement lies.
  EXPECT_EQ(backend.Refs("r")["main"], "c2");
}

TEST(GitWorkloadTest, GeneratesPushesAndFetches) {
  GitWorkload workload("r", 4, 1);
  int pushes = 0;
  int fetches = 0;
  for (int i = 0; i < 50; ++i) {
    http::HttpRequest req = workload.Next();
    if (req.method == "POST") {
      ++pushes;
    } else {
      ++fetches;
    }
  }
  EXPECT_EQ(pushes, 40);
  EXPECT_EQ(fetches, 10);
}

TEST(OwnCloud, SessionAssignedAndUpdatesServed) {
  OwnCloudService service;
  service.Handle(MakeOwnCloudSync("d", 0, "alice", 1, "x"));
  service.Handle(MakeOwnCloudSync("d", 0, "bob", 1, "y"));
  http::HttpResponse rsp = service.Handle(MakeOwnCloudJoin("d", "carol"));
  auto body = seal::json::Parse(rsp.body);
  ASSERT_TRUE(body.ok());
  EXPECT_GT(body->Get("session").AsInt(), 0);
  EXPECT_EQ(body->Get("updates").AsArray().size(), 2u);
}

TEST(OwnCloud, SnapshotServedToJoiners) {
  OwnCloudService service;
  service.Handle(MakeOwnCloudSnapshot("d", 0, "alice", "the content"));
  http::HttpResponse rsp = service.Handle(MakeOwnCloudJoin("d", "bob"));
  auto body = seal::json::Parse(rsp.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Get("snapshot").AsString(), "the content");
}

TEST(Dropbox, CommitThenList) {
  DropboxService service;
  service.Handle(MakeCommitBatch("a", "h", {{"f1", "bl1", 100}, {"f2", "bl2", 200}}));
  http::HttpResponse rsp = service.Handle(MakeListRequest("a"));
  auto body = seal::json::Parse(rsp.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Get("files").AsArray().size(), 2u);
}

TEST(Dropbox, DeleteRemovesFromList) {
  DropboxService service;
  service.Handle(MakeCommitBatch("a", "h", {{"f1", "bl1", 100}}));
  service.Handle(MakeCommitBatch("a", "h", {{"f1", "", -1}}));
  auto body = seal::json::Parse(service.Handle(MakeListRequest("a")).body);
  ASSERT_TRUE(body.ok());
  EXPECT_TRUE(body->Get("files").AsArray().empty());
}

TEST(Dropbox, AccountsAreIsolated) {
  DropboxService service;
  service.Handle(MakeCommitBatch("a", "h", {{"f1", "bl1", 100}}));
  auto body = seal::json::Parse(service.Handle(MakeListRequest("b")).body);
  ASSERT_TRUE(body.ok());
  EXPECT_TRUE(body->Get("files").AsArray().empty());
}

TEST(StaticContent, SizesHonoured) {
  http::HttpResponse rsp = ServeStaticContent(MakeContentRequest(1024));
  EXPECT_EQ(rsp.body.size(), 1024u);
  rsp = ServeStaticContent(MakeContentRequest(0));
  EXPECT_TRUE(rsp.body.empty());
}

// --- HTTPS server + client over plain TLS ---

TEST(HttpServerTest, ServesOverTls) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, {.address = "web:443"}, &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());

  tls::TlsConfig client_tls = ClientTlsConfig();
  auto rsp = OneShotRequest(&network, "web:443", client_tls, MakeContentRequest(512));
  ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
  EXPECT_EQ(rsp->status, 200);
  EXPECT_EQ(rsp->body.size(), 512u);
  EXPECT_EQ(server.requests_served(), 1u);
  server.Stop();
}

TEST(HttpServerTest, KeepAliveServesManyRequests) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, {.address = "web:443"}, &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "web:443", client_tls);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 20; ++i) {
    auto rsp = (*client)->RoundTrip(MakeContentRequest(i * 10, /*keep_alive=*/true));
    ASSERT_TRUE(rsp.ok());
    EXPECT_EQ(rsp->body.size(), static_cast<size_t>(i * 10));
  }
  (*client)->Close();
  server.Stop();
  EXPECT_EQ(server.requests_served(), 20u);
}

TEST(HttpServerTest, ConcurrentClients) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, {.address = "web:443"}, &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        auto rsp = OneShotRequest(&network, "web:443", client_tls, MakeContentRequest(64));
        ASSERT_TRUE(rsp.ok());
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  server.Stop();
  EXPECT_EQ(server.requests_served(), static_cast<uint64_t>(kClients * 5));
}

TEST(HttpServerTest, PerRequestComputeSlowsResponses) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network,
                    {.address = "web:443", .per_request_compute_nanos = 20 * 1000 * 1000},
                    &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "web:443", client_tls);
  ASSERT_TRUE(client.ok());
  int64_t start = seal::NowNanos();
  ASSERT_TRUE((*client)->RoundTrip(MakeContentRequest(1, true)).ok());
  EXPECT_GE(seal::NowNanos() - start, 20 * 1000 * 1000);
  (*client)->Close();
  server.Stop();
}

TEST(HttpServerTest, WorkerThreadCountStaysBounded) {
  // Regression: the old thread-per-connection server grew one std::thread
  // per connection ever accepted, reaped only at Stop(). The worker pool
  // must hold the thread count at the configured bound no matter how many
  // sequential connections are served.
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, {.address = "web:443", .worker_threads = 4}, &transport,
                    ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.worker_thread_count(), 4u);
  tls::TlsConfig client_tls = ClientTlsConfig();
  constexpr int kConnections = 50;
  for (int i = 0; i < kConnections; ++i) {
    auto rsp = OneShotRequest(&network, "web:443", client_tls, MakeContentRequest(32));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
    EXPECT_EQ(server.worker_thread_count(), 4u);
  }
  EXPECT_EQ(server.requests_served(), static_cast<uint64_t>(kConnections));
  server.Stop();
}

TEST(HttpServerTest, SessionStoreResumesAcrossConnections) {
  // A client fleet sharing a ClientSessionStore takes the abbreviated
  // handshake on every reconnect after the first.
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, {.address = "web:443"}, &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  ClientSessionStore sessions;
  uint64_t resumed_before =
      obs::Registry::Global().TakeSnapshot().counter("tls_resumptions_total");
  for (int i = 0; i < 5; ++i) {
    auto client = HttpsClient::Connect(&network, "web:443", client_tls, 0, 0, &sessions);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    EXPECT_EQ((*client)->tls().resumed(), i > 0);
    auto rsp = (*client)->RoundTrip(MakeContentRequest(64));
    ASSERT_TRUE(rsp.ok());
    (*client)->Close();
  }
  uint64_t resumed_after =
      obs::Registry::Global().TakeSnapshot().counter("tls_resumptions_total");
  EXPECT_EQ(resumed_after - resumed_before, 4u);
  server.Stop();
}

// --- proxy ---

TEST(ProxyTest, RelaysThroughTwoTlsLegs) {
  net::Network network;
  // Origin.
  tls::TlsConfig origin_tls = ServerTlsConfig();
  PlainTransport origin_transport(origin_tls);
  DropboxService dropbox;
  HttpServer origin(&network, {.address = "dropbox:443"}, &origin_transport,
                    [&](const http::HttpRequest& r) { return dropbox.Handle(r); });
  ASSERT_TRUE(origin.Start().ok());
  // Proxy.
  tls::TlsConfig proxy_tls = ServerTlsConfig();
  PlainTransport proxy_transport(proxy_tls);
  ProxyServer::Options proxy_options;
  proxy_options.listen_address = "proxy:3128";
  proxy_options.upstream_address = "dropbox:443";
  proxy_options.upstream_tls = ClientTlsConfig();
  ProxyServer proxy(&network, proxy_options, &proxy_transport);
  ASSERT_TRUE(proxy.Start().ok());

  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "proxy:3128", client_tls);
  ASSERT_TRUE(client.ok());
  auto rsp = (*client)->RoundTrip(MakeCommitBatch("a", "h", {{"f", "bl", 10}}));
  ASSERT_TRUE(rsp.ok());
  EXPECT_EQ(rsp->status, 200);
  rsp = (*client)->RoundTrip(MakeListRequest("a"));
  ASSERT_TRUE(rsp.ok());
  auto body = seal::json::Parse(rsp->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Get("files").AsArray().size(), 1u);
  (*client)->Close();
  proxy.Stop();
  origin.Stop();
  EXPECT_EQ(proxy.requests_proxied(), 2u);
}

// Regression (shutdown hang): a blocking-mode worker parked in Read on an
// idle keep-alive connection used to wedge Stop() forever -- the worker
// never returned to the pool, and pool_.Stop() joined it. Stop() now
// aborts live connections first.
TEST(HttpServerTest, StopCompletesWithIdleKeepAliveConnection) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, {.address = "web:443", .worker_threads = 2}, &transport,
                    ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "web:443", client_tls);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->RoundTrip(MakeContentRequest(16, /*keep_alive=*/true)).ok());
  // The connection stays open and idle; its worker is parked in Read.
  auto stopped = std::async(std::launch::async, [&] { server.Stop(); });
  ASSERT_EQ(stopped.wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "Stop() hung behind an idle keep-alive connection";
}

// Same hang on the proxy: the worker is parked in a read on the downstream
// leg (or the upstream leg) of an idle proxied connection.
TEST(ProxyTest, StopCompletesWithIdleProxiedConnection) {
  net::Network network;
  tls::TlsConfig origin_tls = ServerTlsConfig();
  PlainTransport origin_transport(origin_tls);
  HttpServer origin(&network, {.address = "origin:443"}, &origin_transport, ServeStaticContent);
  ASSERT_TRUE(origin.Start().ok());
  tls::TlsConfig proxy_tls = ServerTlsConfig();
  PlainTransport proxy_transport(proxy_tls);
  ProxyServer::Options proxy_options;
  proxy_options.listen_address = "proxy:3128";
  proxy_options.upstream_address = "origin:443";
  proxy_options.upstream_tls = ClientTlsConfig();
  proxy_options.worker_threads = 2;
  ProxyServer proxy(&network, proxy_options, &proxy_transport);
  ASSERT_TRUE(proxy.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "proxy:3128", client_tls);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->RoundTrip(MakeContentRequest(16, /*keep_alive=*/true)).ok());
  auto stopped = std::async(std::launch::async, [&] { proxy.Stop(); });
  ASSERT_EQ(stopped.wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "proxy Stop() hung behind an idle proxied connection";
  origin.Stop();
}

// Regression (Connection header): the server compared the raw header value
// against the exact lowercase string "close", so "Close", "keep-alive,
// close", and HTTP/1.0's close-by-default all kept the connection alive.
// Observable end-to-end: after a response that should close, the next
// round trip on the same connection fails.
TEST(HttpServerTest, ConnectionCloseIsCaseInsensitive) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, {.address = "web:443"}, &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "web:443", client_tls);
  ASSERT_TRUE(client.ok());
  http::HttpRequest req = MakeContentRequest(16, /*keep_alive=*/true);
  req.SetHeader("Connection", "Close");  // capital C, RFC 7230 tokens are case-insensitive
  ASSERT_TRUE((*client)->RoundTrip(req).ok());
  EXPECT_FALSE((*client)->RoundTrip(MakeContentRequest(16, true)).ok())
      << "server ignored 'Connection: Close' and kept the connection alive";
  server.Stop();
}

TEST(HttpServerTest, ConnectionCloseInTokenList) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, {.address = "web:443"}, &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "web:443", client_tls);
  ASSERT_TRUE(client.ok());
  http::HttpRequest req = MakeContentRequest(16, /*keep_alive=*/true);
  req.SetHeader("Connection", "keep-alive, close");  // close wins
  ASSERT_TRUE((*client)->RoundTrip(req).ok());
  EXPECT_FALSE((*client)->RoundTrip(MakeContentRequest(16, true)).ok())
      << "server ignored 'close' inside a Connection token list";
  server.Stop();
}

TEST(HttpServerTest, Http10DefaultsToClose) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, {.address = "web:443"}, &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "web:443", client_tls);
  ASSERT_TRUE(client.ok());
  // keep_alive=true -> no Connection header at all; 1.0 must still close.
  http::HttpRequest req = MakeContentRequest(16, /*keep_alive=*/true);
  req.version = "HTTP/1.0";
  ASSERT_TRUE((*client)->RoundTrip(req).ok());
  EXPECT_FALSE((*client)->RoundTrip(MakeContentRequest(16, true)).ok())
      << "server kept an HTTP/1.0 connection alive without 'keep-alive'";
  server.Stop();
}

TEST(HttpServerTest, Http10KeepAliveOptInPersists) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, {.address = "web:443"}, &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "web:443", client_tls);
  ASSERT_TRUE(client.ok());
  http::HttpRequest req = MakeContentRequest(16, /*keep_alive=*/true);
  req.version = "HTTP/1.0";
  req.SetHeader("Connection", "keep-alive");
  ASSERT_TRUE((*client)->RoundTrip(req).ok());
  EXPECT_TRUE((*client)->RoundTrip(MakeContentRequest(16, true)).ok())
      << "server closed an HTTP/1.0 connection that opted into keep-alive";
  (*client)->Close();
  server.Stop();
}

TEST(ProxyTest, UpstreamLatencyAddsToRoundTrip) {
  net::Network network;
  tls::TlsConfig origin_tls = ServerTlsConfig();
  PlainTransport origin_transport(origin_tls);
  HttpServer origin(&network, {.address = "origin:443"}, &origin_transport, ServeStaticContent);
  ASSERT_TRUE(origin.Start().ok());
  tls::TlsConfig proxy_tls = ServerTlsConfig();
  PlainTransport proxy_transport(proxy_tls);
  ProxyServer::Options proxy_options;
  proxy_options.listen_address = "proxy:3128";
  proxy_options.upstream_address = "origin:443";
  proxy_options.upstream_latency_nanos = 10 * 1000 * 1000;  // 10 ms one-way
  proxy_options.upstream_tls = ClientTlsConfig();
  ProxyServer proxy(&network, proxy_options, &proxy_transport);
  ASSERT_TRUE(proxy.Start().ok());

  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "proxy:3128", client_tls);
  ASSERT_TRUE(client.ok());
  int64_t start = seal::NowNanos();
  ASSERT_TRUE((*client)->RoundTrip(MakeContentRequest(16, true)).ok());
  // At least one upstream round trip (2 x 10 ms), plus the upstream TLS
  // handshake which also crosses the slow link.
  EXPECT_GE(seal::NowNanos() - start, 20 * 1000 * 1000);
  (*client)->Close();
  proxy.Stop();
  origin.Stop();
}

}  // namespace
}  // namespace seal::services
