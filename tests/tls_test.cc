#include <gtest/gtest.h>

#include <thread>

#include "src/common/rng.h"
#include "src/net/net.h"
#include "src/tls/record.h"
#include "src/tls/tls.h"
#include "src/tls/x509.h"

namespace seal::tls {
namespace {

// Shared PKI for the tests.
struct TestPki {
  TestPki() {
    ca = MakeSelfSignedCa("Test CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
    server_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("server"));
    server_cert = IssueCertificate(ca, "server.example", server_key.public_key(), 2);
    client_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("client"));
    client_cert = IssueCertificate(ca, "client@example", client_key.public_key(), 3);
  }
  CertifiedKey ca;
  crypto::EcdsaPrivateKey server_key;
  Certificate server_cert;
  crypto::EcdsaPrivateKey client_key;
  Certificate client_cert;
};

TestPki& Pki() {
  static TestPki pki;
  return pki;
}

TlsConfig ServerConfig() {
  TlsConfig config;
  config.certificate = Pki().server_cert;
  config.private_key = Pki().server_key;
  config.trusted_roots = {Pki().ca.cert};
  return config;
}

TlsConfig ClientConfig() {
  TlsConfig config;
  config.trusted_roots = {Pki().ca.cert};
  return config;
}

// Runs a client/server handshake over an in-memory stream pair and returns
// both statuses.
struct HandshakeResult {
  Status client;
  Status server;
};

HandshakeResult DoHandshake(TlsConnection& client, TlsConnection& server) {
  HandshakeResult result{Internal("unset"), Internal("unset")};
  std::thread server_thread([&] { result.server = server.Handshake(); });
  result.client = client.Handshake();
  server_thread.join();
  return result;
}

// --- x509 ---

TEST(X509, IssueAndVerify) {
  const TestPki& pki = Pki();
  EXPECT_TRUE(VerifyCertificate(pki.server_cert, pki.ca.cert).ok());
  EXPECT_TRUE(VerifyCertificate(pki.ca.cert, pki.ca.cert).ok());  // self-signed root
}

TEST(X509, WrongCaRejected) {
  const TestPki& pki = Pki();
  CertifiedKey other = MakeSelfSignedCa("Other CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("x")));
  EXPECT_FALSE(VerifyCertificate(pki.server_cert, other.cert).ok());
}

TEST(X509, TamperedCertificateRejected) {
  const TestPki& pki = Pki();
  Certificate forged = pki.server_cert;
  forged.subject = "evil.example";
  EXPECT_FALSE(VerifyCertificate(forged, pki.ca.cert).ok());
}

TEST(X509, EncodeDecodeRoundTrip) {
  const TestPki& pki = Pki();
  Bytes enc = pki.server_cert.Encode();
  auto dec = Certificate::Decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->subject, "server.example");
  EXPECT_EQ(dec->issuer, "Test CA");
  EXPECT_TRUE(VerifyCertificate(*dec, pki.ca.cert).ok());
}

TEST(X509, DecodeRejectsTruncated) {
  Bytes enc = Pki().server_cert.Encode();
  EXPECT_FALSE(Certificate::Decode(BytesView(enc.data(), enc.size() - 10)).ok());
  EXPECT_FALSE(Certificate::Decode(BytesView(enc.data(), 3)).ok());
}

// --- record layer ---

TEST(RecordLayer, PlaintextRoundTrip) {
  auto [a, b] = net::CreateStreamPair();
  StreamBio bio_a(a.get());
  StreamBio bio_b(b.get());
  RecordLayer writer(&bio_a);
  RecordLayer reader(&bio_b);
  ASSERT_TRUE(writer.WriteRecord(RecordType::kHandshake, ToBytes("hello")).ok());
  auto record = reader.ReadRecord();
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->type, RecordType::kHandshake);
  EXPECT_EQ(ToString(record->payload), "hello");
}

TEST(RecordLayer, EncryptedRoundTrip) {
  auto [a, b] = net::CreateStreamPair();
  StreamBio bio_a(a.get());
  StreamBio bio_b(b.get());
  RecordLayer writer(&bio_a);
  RecordLayer reader(&bio_b);
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Bytes iv = FromHex("a0a1a2a3");
  writer.EnableWriteProtection(key, iv);
  reader.EnableReadProtection(key, iv);
  ASSERT_TRUE(writer.WriteRecord(RecordType::kApplicationData, ToBytes("secret")).ok());
  auto record = reader.ReadRecord();
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(ToString(record->payload), "secret");
}

TEST(RecordLayer, WrongKeyFails) {
  auto [a, b] = net::CreateStreamPair();
  StreamBio bio_a(a.get());
  StreamBio bio_b(b.get());
  RecordLayer writer(&bio_a);
  RecordLayer reader(&bio_b);
  writer.EnableWriteProtection(FromHex("000102030405060708090a0b0c0d0e0f"), FromHex("a0a1a2a3"));
  reader.EnableReadProtection(FromHex("ff0102030405060708090a0b0c0d0e0f"), FromHex("a0a1a2a3"));
  ASSERT_TRUE(writer.WriteRecord(RecordType::kApplicationData, ToBytes("secret")).ok());
  EXPECT_FALSE(reader.ReadRecord().ok());
}

TEST(RecordLayer, ReplayDetected) {
  // Capture a protected record and deliver it twice.
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Bytes iv = FromHex("a0a1a2a3");
  RecordCipher writer(key, iv);
  RecordCipher reader(key, iv);
  Bytes wire = writer.Protect(RecordType::kApplicationData, ToBytes("msg"));
  ASSERT_TRUE(reader.Unprotect(RecordType::kApplicationData, wire).ok());
  EXPECT_FALSE(reader.Unprotect(RecordType::kApplicationData, wire).ok());  // replay
}

TEST(RecordLayer, LargePayloadSplitsAcrossRecords) {
  auto [a, b] = net::CreateStreamPair();
  StreamBio bio_a(a.get());
  StreamBio bio_b(b.get());
  RecordLayer writer(&bio_a);
  RecordLayer reader(&bio_b);
  Bytes big(50000);
  SplitMix64 rng(1);
  for (auto& c : big) {
    c = static_cast<uint8_t>(rng.Next());
  }
  std::thread t([&] { ASSERT_TRUE(writer.WriteAll(RecordType::kApplicationData, big).ok()); });
  Bytes received;
  while (received.size() < big.size()) {
    auto record = reader.ReadRecord();
    ASSERT_TRUE(record.ok());
    Append(received, record->payload);
  }
  t.join();
  EXPECT_EQ(received, big);
}

// --- full handshakes ---

TEST(Tls, HandshakeAndEcho) {
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConfig server_config = ServerConfig();
  TlsConfig client_config = ClientConfig();
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  HandshakeResult hs = DoHandshake(client, server);
  ASSERT_TRUE(hs.client.ok()) << hs.client.ToString();
  ASSERT_TRUE(hs.server.ok()) << hs.server.ToString();

  ASSERT_TRUE(client.Write(std::string_view("ping")).ok());
  uint8_t buf[16];
  auto n = server.Read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), *n), "ping");
  ASSERT_TRUE(server.Write(std::string_view("pong")).ok());
  n = client.Read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), *n), "pong");
}

TEST(Tls, ClientSeesServerCertificate) {
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConfig server_config = ServerConfig();
  TlsConfig client_config = ClientConfig();
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  HandshakeResult hs = DoHandshake(client, server);
  ASSERT_TRUE(hs.client.ok());
  ASSERT_TRUE(client.peer_certificate().has_value());
  EXPECT_EQ(client.peer_certificate()->subject, "server.example");
}

TEST(Tls, UntrustedServerRejected) {
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConfig server_config = ServerConfig();
  TlsConfig client_config = ClientConfig();
  CertifiedKey rogue = MakeSelfSignedCa("Rogue", crypto::EcdsaPrivateKey::FromSeed(ToBytes("r")));
  client_config.trusted_roots = {rogue.cert};  // client trusts someone else
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  HandshakeResult hs = DoHandshake(client, server);
  EXPECT_FALSE(hs.client.ok());
}

TEST(Tls, VerificationCanBeDisabled) {
  // The Dropbox deployment disables client-side certificate verification
  // (§6.4); the handshake must still complete.
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConfig server_config = ServerConfig();
  TlsConfig client_config = ClientConfig();
  client_config.trusted_roots.clear();
  client_config.verify_peer = false;
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  HandshakeResult hs = DoHandshake(client, server);
  EXPECT_TRUE(hs.client.ok()) << hs.client.ToString();
  EXPECT_TRUE(hs.server.ok()) << hs.server.ToString();
}

TEST(Tls, MutualAuthentication) {
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConfig server_config = ServerConfig();
  server_config.require_client_certificate = true;
  TlsConfig client_config = ClientConfig();
  client_config.certificate = Pki().client_cert;
  client_config.private_key = Pki().client_key;
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  HandshakeResult hs = DoHandshake(client, server);
  ASSERT_TRUE(hs.client.ok()) << hs.client.ToString();
  ASSERT_TRUE(hs.server.ok()) << hs.server.ToString();
  ASSERT_TRUE(server.peer_certificate().has_value());
  EXPECT_EQ(server.peer_certificate()->subject, "client@example");
}

TEST(Tls, ClientWithoutCertRejectedWhenRequired) {
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConfig server_config = ServerConfig();
  server_config.require_client_certificate = true;
  TlsConfig client_config = ClientConfig();  // no client cert configured
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  HandshakeResult hs = DoHandshake(client, server);
  EXPECT_FALSE(hs.client.ok());
}

TEST(Tls, SessionIdsAgreeAndAreUnique) {
  auto run = [](Bytes* session_id) {
    auto [client_stream, server_stream] = net::CreateStreamPair();
    StreamBio client_bio(client_stream.get());
    StreamBio server_bio(server_stream.get());
    TlsConfig server_config = ServerConfig();
    TlsConfig client_config = ClientConfig();
    TlsConnection client(&client_bio, &client_config, Role::kClient);
    TlsConnection server(&server_bio, &server_config, Role::kServer);
    HandshakeResult hs = DoHandshake(client, server);
    ASSERT_TRUE(hs.client.ok());
    EXPECT_EQ(client.session_id(), server.session_id());
    *session_id = client.session_id();
  };
  Bytes sid1, sid2;
  run(&sid1);
  run(&sid2);
  EXPECT_NE(sid1, sid2);
}

TEST(Tls, LargeTransfer) {
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConfig server_config = ServerConfig();
  TlsConfig client_config = ClientConfig();
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  HandshakeResult hs = DoHandshake(client, server);
  ASSERT_TRUE(hs.client.ok());

  Bytes blob(200 * 1024);
  SplitMix64 rng(7);
  for (auto& c : blob) {
    c = static_cast<uint8_t>(rng.Next());
  }
  std::thread sender([&] { ASSERT_TRUE(client.Write(blob).ok()); });
  Bytes received;
  uint8_t buf[8192];
  while (received.size() < blob.size()) {
    auto n = server.Read(buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u);
    received.insert(received.end(), buf, buf + *n);
  }
  sender.join();
  EXPECT_EQ(received, blob);
}

TEST(Tls, CloseDeliversEof) {
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConfig server_config = ServerConfig();
  TlsConfig client_config = ClientConfig();
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  HandshakeResult hs = DoHandshake(client, server);
  ASSERT_TRUE(hs.client.ok());
  client.Close();
  uint8_t buf[4];
  auto n = server.Read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(Tls, InfoCallbackFires) {
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConfig server_config = ServerConfig();
  TlsConfig client_config = ClientConfig();
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  std::vector<InfoEvent> events;
  client.set_info_callback([&](InfoEvent e, int) { events.push_back(e); });
  HandshakeResult hs = DoHandshake(client, server);
  ASSERT_TRUE(hs.client.ok());
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front(), InfoEvent::kHandshakeStart);
  EXPECT_EQ(events.back(), InfoEvent::kHandshakeDone);
}

TEST(Tls, ReadBeforeHandshakeFails) {
  auto [client_stream, server_stream] = net::CreateStreamPair();
  StreamBio client_bio(client_stream.get());
  TlsConfig client_config = ClientConfig();
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  uint8_t buf[1];
  EXPECT_FALSE(client.Read(buf, 1).ok());
  EXPECT_FALSE(client.Write(std::string_view("x")).ok());
}

TEST(Tls, TamperedCiphertextBreaksConnection) {
  // Man-in-the-middle flips a bit in an application record; the receiver
  // must reject it rather than deliver corrupt plaintext. We splice the
  // tampering in at the stream level.
  auto [client_stream, mitm_a] = net::CreateStreamPair();
  auto [mitm_b, server_stream] = net::CreateStreamPair();
  // Relay handshake transparently, then corrupt one byte of the first
  // application record in the client->server direction.
  // The relay owns mitm_a (client side) and mitm_b (server side). The
  // client->server direction is record-oriented so exactly the first
  // application-data record is corrupted.
  std::thread relay_ab([&, &mitm_a = mitm_a, &mitm_b = mitm_b] {
    bool tampered = false;
    for (;;) {
      uint8_t header[5];
      if (!mitm_a->ReadFull(header, 5).ok()) {
        break;
      }
      size_t len = (static_cast<size_t>(header[3]) << 8) | header[4];
      Bytes body(len);
      if (!mitm_a->ReadFull(body.data(), len).ok()) {
        break;
      }
      if (!tampered && header[0] == 23 && !body.empty()) {
        body.back() ^= 0x01;  // flip one ciphertext bit
        tampered = true;
      }
      mitm_b->Write(BytesView(header, 5));
      mitm_b->Write(body);
    }
    mitm_b->Close();
  });
  std::thread relay_ba([&, &mitm_a = mitm_a, &mitm_b = mitm_b] {
    uint8_t buf[4096];
    for (;;) {
      size_t n = mitm_b->Read(buf, sizeof(buf));
      if (n == 0) {
        break;
      }
      mitm_a->Write(BytesView(buf, n));
    }
    mitm_a->Close();
  });

  StreamBio client_bio(client_stream.get());
  StreamBio server_bio(server_stream.get());
  TlsConfig server_config = ServerConfig();
  TlsConfig client_config = ClientConfig();
  TlsConnection client(&client_bio, &client_config, Role::kClient);
  TlsConnection server(&server_bio, &server_config, Role::kServer);
  // Note: server reads from mitm_b's peer; wire the BIOs accordingly.
  HandshakeResult hs{Internal("unset"), Internal("unset")};
  std::thread server_thread([&] {
    hs.server = server.Handshake();
    if (hs.server.ok()) {
      uint8_t buf[16];
      auto n = server.Read(buf, sizeof(buf));
      // The tampered record must NOT decrypt.
      EXPECT_FALSE(n.ok());
    }
  });
  hs.client = client.Handshake();
  ASSERT_TRUE(hs.client.ok()) << hs.client.ToString();
  ASSERT_TRUE(client.Write(std::string_view("attack at dawn")).ok());
  server_thread.join();
  client_stream->Close();
  server_stream->Close();
  relay_ab.join();
  relay_ba.join();
}

}  // namespace
}  // namespace seal::tls
