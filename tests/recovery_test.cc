// Crash-recovery and durable-lifecycle tests: segmented logs, sealed
// snapshots, torn-tail/torn-head repair, trim archives and full-history
// reconstruction.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/core/audit_log.h"
#include "src/core/shard.h"
#include "src/sgx/enclave.h"

namespace seal::core {
namespace {

crypto::EcdsaPrivateKey TestKey() {
  return crypto::EcdsaPrivateKey::FromSeed(ToBytes("recovery-test-key"));
}

sgx::EnclaveConfig FastEnclave() {
  sgx::EnclaveConfig config;
  config.inject_costs = false;
  return config;
}

// gtest's TempDir persists across runs, so every test scrubs its path
// before building state on it.
std::string FreshPath(const std::string& name) {
  std::string path = std::string(::testing::TempDir()) + "/" + name;
  RemoveLogFiles(path);
  return path;
}

AuditLogOptions SegmentedOptions(const std::string& path, uint64_t segment_bytes = 512) {
  AuditLogOptions options;
  options.mode = PersistenceMode::kDisk;
  options.path = path;
  options.counter_options.inject_latency = false;
  options.segment_bytes = segment_bytes;
  options.recover = true;
  return options;
}

std::vector<std::string> GitSchema() {
  return {"CREATE TABLE updates(time, repo, branch, cid, type)",
          "CREATE TABLE advertisements(time, repo, branch, cid)"};
}

db::Row GitUpdateRow(int64_t time, const std::string& branch, const std::string& cid) {
  return {db::Value(time), db::Value(std::string("r")), db::Value(branch), db::Value(cid),
          db::Value(std::string("update"))};
}

// Appends `n` update rows with times [first, first+n) and commits.
void FillLog(AuditLog& log, int64_t first, int n) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        log.Append("updates", GitUpdateRow(first + i, "main", "c" + std::to_string(first + i)),
                   /*wall_nanos=*/1000 + first + i)
            .ok());
  }
  ASSERT_TRUE(log.CommitHead().ok());
}

std::vector<Bytes> SerializedEntries(const std::vector<LogEntry>& entries) {
  std::vector<Bytes> out;
  for (const LogEntry& entry : entries) {
    out.push_back(entry.Serialize());
  }
  return out;
}

TEST(SegmentedLog, AppendsRollSegmentsAndVerify) {
  const std::string path = FreshPath("seg_roll.log");
  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(log.Recover().ok());
  FillLog(log, 1, 40);
  EXPECT_GT(log.segment_count(), 2u);
  // All but the last segment are closed and immutable.
  const auto segments = ListSegmentFiles(path);
  ASSERT_EQ(segments.size(), log.segment_count());
  for (size_t i = 0; i < segments.size(); ++i) {
    auto data = ReadFileBytes(SegmentFilePath(path, segments[i]));
    ASSERT_TRUE(data.ok());
    auto header = SegmentHeader::Decode(*data);
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header->index, i);
    if (i + 1 < segments.size()) {
      EXPECT_EQ(header->closed, 1u);
    }
  }
  auto verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, 40u);
  auto entries = AuditLog::ReadVerifiedEntries(path);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 40u);
}

TEST(SegmentedLog, EncryptedSegmentsVerifyWithKey) {
  const std::string path = FreshPath("seg_enc.log");
  AuditLogOptions options = SegmentedOptions(path);
  options.encryption_key = ToBytes("0123456789abcdef");
  AuditLog log(options, TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(log.Recover().ok());
  FillLog(log, 1, 25);
  auto verified =
      AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter(), options.encryption_key);
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, 25u);
  // Without the key the records do not parse.
  EXPECT_FALSE(AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter()).ok());
}

TEST(Recovery, CleanRestartRestoresLogAndChain) {
  const std::string path = FreshPath("recover_clean.log");
  Bytes head_before;
  std::vector<Bytes> entries_before;
  {
    AuditLog log(SegmentedOptions(path), TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    FillLog(log, 1, 30);
    head_before = log.chain_head();
    auto entries = AuditLog::ReadVerifiedEntries(path);
    ASSERT_TRUE(entries.ok());
    entries_before = SerializedEntries(*entries);
  }
  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  AuditLog::RecoveryInfo info;
  ASSERT_TRUE(log.Recover(&info).ok());
  EXPECT_TRUE(info.had_state);
  EXPECT_FALSE(info.head_missing);
  EXPECT_EQ(info.max_ticket, 30);
  EXPECT_EQ(log.entry_count(), 30u);
  EXPECT_EQ(log.chain_head(), head_before);
  // The database is rebuilt too.
  auto rows = log.Query("SELECT * FROM updates");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 30u);
  // Recovery re-commits against the fresh counter cluster; the log then
  // verifies end to end and accepts further appends.
  auto verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, 30u);
  FillLog(log, 31, 10);
  verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, 40u);
  auto entries = AuditLog::ReadVerifiedEntries(path);
  ASSERT_TRUE(entries.ok());
  const std::vector<Bytes> after = SerializedEntries(*entries);
  ASSERT_GE(after.size(), entries_before.size());
  for (size_t i = 0; i < entries_before.size(); ++i) {
    EXPECT_EQ(after[i], entries_before[i]) << "entry " << i << " changed across restart";
  }
}

TEST(Recovery, LegacySingleFileLayoutRecovers) {
  const std::string path = FreshPath("recover_legacy.log");
  AuditLogOptions options = SegmentedOptions(path);
  options.segment_bytes = 0;  // legacy single-file layout
  {
    AuditLog log(options, TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    FillLog(log, 1, 12);
  }
  AuditLog log(options, TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  AuditLog::RecoveryInfo info;
  ASSERT_TRUE(log.Recover(&info).ok());
  EXPECT_EQ(log.entry_count(), 12u);
  EXPECT_EQ(info.replayed_entries, 12u);
  auto verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
}

TEST(Recovery, FreshPathRecoversEmpty) {
  const std::string path = FreshPath("recover_empty.log");
  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  AuditLog::RecoveryInfo info;
  ASSERT_TRUE(log.Recover(&info).ok());
  EXPECT_FALSE(info.had_state);
  EXPECT_EQ(log.entry_count(), 0u);
  FillLog(log, 1, 3);
  EXPECT_EQ(log.entry_count(), 3u);
}

TEST(Recovery, AppendBeforeRecoverIsRejected) {
  const std::string path = FreshPath("recover_guard.log");
  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  Status s = log.Append("updates", GitUpdateRow(1, "main", "c1"));
  EXPECT_FALSE(s.ok());
  ASSERT_TRUE(log.Recover().ok());
  EXPECT_TRUE(log.Append("updates", GitUpdateRow(1, "main", "c1")).ok());
}

TEST(Recovery, TornTailRecordIsDiscarded) {
  const std::string path = FreshPath("recover_torn_tail.log");
  {
    AuditLog log(SegmentedOptions(path), TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    FillLog(log, 1, 20);
  }
  // Simulate a crash mid-append: a frame whose length prefix promises more
  // bytes than the file holds.
  const auto segments = ListSegmentFiles(path);
  ASSERT_FALSE(segments.empty());
  Bytes torn;
  AppendBe32(torn, 1000);
  torn.push_back(0xde);
  torn.push_back(0xad);
  ASSERT_TRUE(DurableWriteFile(SegmentFilePath(path, segments.back()), torn, /*append=*/true,
                               /*sync=*/false)
                  .ok());

  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  AuditLog::RecoveryInfo info;
  ASSERT_TRUE(log.Recover(&info).ok());
  EXPECT_EQ(info.discarded_records, 1u);
  EXPECT_EQ(log.entry_count(), 20u);
  // The torn bytes were truncated away: the log verifies and extends.
  auto verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, 20u);
  FillLog(log, 21, 5);
  verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, 25u);
}

TEST(Recovery, FlushedButUncommittedTailIsKept) {
  const std::string path = FreshPath("recover_uncommitted.log");
  {
    AuditLog log(SegmentedOptions(path), TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    FillLog(log, 1, 10);  // committed
    // Two more appends flushed (by the destructor) but never committed:
    // the head on disk covers 10 entries, the segments hold 12.
    ASSERT_TRUE(log.Append("updates", GitUpdateRow(11, "main", "c11"), 2000).ok());
    ASSERT_TRUE(log.Append("updates", GitUpdateRow(12, "main", "c12"), 2001).ok());
  }
  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  AuditLog::RecoveryInfo info;
  ASSERT_TRUE(log.Recover(&info).ok());
  // The tail was written by this enclave (it authenticated and chained),
  // so recovery keeps it and the re-committed head covers it.
  EXPECT_EQ(log.entry_count(), 12u);
  EXPECT_EQ(info.max_ticket, 12);
  auto verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, 12u);
}

TEST(Recovery, TornHeadFileIsReplaced) {
  const std::string path = FreshPath("recover_torn_head.log");
  {
    AuditLog log(SegmentedOptions(path), TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    FillLog(log, 1, 15);
  }
  // Tear the head: keep only the first 40 bytes.
  auto head = ReadFileBytes(HeadFilePath(path));
  ASSERT_TRUE(head.ok());
  head->resize(40);
  ASSERT_TRUE(DurableWriteFile(HeadFilePath(path), *head, /*append=*/false, /*sync=*/false).ok());

  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  AuditLog::RecoveryInfo info;
  ASSERT_TRUE(log.Recover(&info).ok());
  EXPECT_TRUE(info.head_missing);
  EXPECT_EQ(log.entry_count(), 15u);
  // Recovery re-signed a fresh head over the self-verified chain.
  auto verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, 15u);
}

TEST(Recovery, MissingHeadFileIsRecommitted) {
  const std::string path = FreshPath("recover_missing_head.log");
  {
    AuditLog log(SegmentedOptions(path), TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    FillLog(log, 1, 8);
  }
  RemoveFileIfExists(HeadFilePath(path));
  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  AuditLog::RecoveryInfo info;
  ASSERT_TRUE(log.Recover(&info).ok());
  EXPECT_TRUE(info.head_missing);
  EXPECT_EQ(log.entry_count(), 8u);
  EXPECT_TRUE(FileExists(HeadFilePath(path)));
  auto verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
}

TEST(Recovery, MissingMiddleSegmentIsDetected) {
  const std::string path = FreshPath("recover_gap.log");
  {
    AuditLog log(SegmentedOptions(path), TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    FillLog(log, 1, 40);
    ASSERT_GT(log.segment_count(), 2u);
  }
  RemoveFileIfExists(SegmentFilePath(path, 1));
  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  EXPECT_FALSE(log.Recover().ok());
}

TEST(Recovery, TamperedMiddleRecordFailsRecovery) {
  const std::string path = FreshPath("recover_tamper.log");
  {
    AuditLog log(SegmentedOptions(path), TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    FillLog(log, 1, 40);
    ASSERT_GT(log.segment_count(), 1u);
  }
  // Flip a record byte in the FIRST segment: not at the physical end of
  // the log, so this is corruption, not a torn write.
  auto data = ReadFileBytes(SegmentFilePath(path, 0));
  ASSERT_TRUE(data.ok());
  ASSERT_GT(data->size(), kSegmentHeaderSize + 10);
  (*data)[kSegmentHeaderSize + 9] ^= 0x01;
  ASSERT_TRUE(
      DurableWriteFile(SegmentFilePath(path, 0), *data, /*append=*/false, /*sync=*/false).ok());

  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  EXPECT_FALSE(log.Recover().ok());
}

TEST(Recovery, SnapshotBoundsReplayToTail) {
  const std::string path = FreshPath("recover_snapshot.log");
  AuditLogOptions options = SegmentedOptions(path, /*segment_bytes=*/1024);
  options.snapshot_interval_bytes = 2048;
  size_t total = 0;
  {
    AuditLog log(options, TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    for (int batch = 0; batch < 20; ++batch) {
      FillLog(log, 1 + batch * 5, 5);
    }
    total = log.entry_count();
    ASSERT_TRUE(FileExists(SnapshotFilePath(path)));
  }
  AuditLog log(options, TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  AuditLog::RecoveryInfo info;
  ASSERT_TRUE(log.Recover(&info).ok());
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_GT(info.snapshot_entries, 0u);
  // O(tail): only the entries past the snapshot were replayed from disk.
  EXPECT_LT(info.replayed_entries, total);
  EXPECT_EQ(info.snapshot_entries + info.replayed_entries, total);
  EXPECT_EQ(log.entry_count(), total);
  auto verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, total);
}

TEST(Recovery, CorruptSnapshotFallsBackToFullReplay) {
  const std::string path = FreshPath("recover_bad_snap.log");
  AuditLogOptions options = SegmentedOptions(path, /*segment_bytes=*/1024);
  options.snapshot_interval_bytes = 1024;
  size_t total = 0;
  {
    AuditLog log(options, TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    for (int batch = 0; batch < 10; ++batch) {
      FillLog(log, 1 + batch * 5, 5);
    }
    total = log.entry_count();
    ASSERT_TRUE(FileExists(SnapshotFilePath(path)));
  }
  auto snap = ReadFileBytes(SnapshotFilePath(path));
  ASSERT_TRUE(snap.ok());
  (*snap)[snap->size() / 2] ^= 0xff;
  ASSERT_TRUE(
      DurableWriteFile(SnapshotFilePath(path), *snap, /*append=*/false, /*sync=*/false).ok());

  AuditLog log(options, TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  AuditLog::RecoveryInfo info;
  ASSERT_TRUE(log.Recover(&info).ok());
  EXPECT_FALSE(info.snapshot_loaded);
  EXPECT_EQ(info.replayed_entries, total);
  EXPECT_EQ(log.entry_count(), total);
}

TEST(Recovery, SealedSnapshotNeedsMatchingIdentity) {
  const std::string path = FreshPath("recover_sealed_snap.log");
  sgx::Enclave producer(FastEnclave(), ToBytes("producer-code"), "signer-a");
  sgx::Enclave stranger(FastEnclave(), ToBytes("stranger-code"), "signer-b");
  AuditLogOptions options = SegmentedOptions(path, /*segment_bytes=*/1024);
  options.snapshot_interval_bytes = 1024;
  options.sealing_enclave = &producer;
  options.seal_policy = sgx::SealPolicy::kMrEnclave;
  size_t total = 0;
  {
    AuditLog log(options, TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    for (int batch = 0; batch < 10; ++batch) {
      FillLog(log, 1 + batch * 5, 5);
    }
    total = log.entry_count();
    ASSERT_TRUE(FileExists(SnapshotFilePath(path)));
  }
  // The right identity opens the seal and uses the snapshot.
  {
    AuditLog log(options, TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    AuditLog::RecoveryInfo info;
    ASSERT_TRUE(log.Recover(&info).ok());
    EXPECT_TRUE(info.snapshot_loaded);
    EXPECT_EQ(log.entry_count(), total);
  }
  // A different enclave identity cannot open it; recovery falls back to a
  // full replay of the (unsealed) segments and still restores the log.
  {
    AuditLogOptions other = options;
    other.sealing_enclave = &stranger;
    AuditLog log(other, TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    AuditLog::RecoveryInfo info;
    ASSERT_TRUE(log.Recover(&info).ok());
    EXPECT_FALSE(info.snapshot_loaded);
    EXPECT_EQ(info.replayed_entries, total);
    EXPECT_EQ(log.entry_count(), total);
  }
}

TEST(TrimArchive, TrimmedRowsMoveToArchiveAndFullHistoryMerges) {
  const std::string path = FreshPath("trim_archive.log");
  AuditLogOptions options = SegmentedOptions(path, /*segment_bytes=*/1024);
  options.archive_trimmed = true;
  AuditLog log(options, TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(log.Recover().ok());
  FillLog(log, 1, 30);
  auto before = AuditLog::ReadVerifiedEntries(path);
  ASSERT_TRUE(before.ok());
  const std::vector<Bytes> pre_trim = SerializedEntries(*before);

  size_t deleted = 0;
  size_t archived = 0;
  ASSERT_TRUE(log.Trim({"DELETE FROM updates WHERE time <= 20"}, &deleted, &archived).ok());
  EXPECT_EQ(deleted, 20u);
  EXPECT_EQ(archived, 20u);
  EXPECT_EQ(log.archive_count(), 1u);
  ASSERT_EQ(ListArchiveFiles(path).size(), 1u);

  // The hot log still verifies after the rewrite.
  auto verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, 10u);

  // Archives + hot log reproduce the complete pre-trim history, in order.
  auto history = AuditLog::ReadFullHistory(path);
  ASSERT_TRUE(history.ok()) << history.status().message();
  const std::vector<Bytes> merged = SerializedEntries(*history);
  ASSERT_EQ(merged.size(), pre_trim.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i], pre_trim[i]) << "history entry " << i << " lost or reordered by trim";
  }

  // A second trim stacks a second archive; history still complete.
  ASSERT_TRUE(log.Trim({"DELETE FROM updates WHERE time <= 25"}, &deleted, &archived).ok());
  EXPECT_EQ(deleted, 5u);
  EXPECT_EQ(log.archive_count(), 2u);
  history = AuditLog::ReadFullHistory(path);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), pre_trim.size());
}

TEST(TrimArchive, SealedArchivesNeedIdentity) {
  const std::string path = FreshPath("trim_sealed_archive.log");
  sgx::Enclave producer(FastEnclave(), ToBytes("archive-code"), "signer-a");
  AuditLogOptions options = SegmentedOptions(path, /*segment_bytes=*/1024);
  options.archive_trimmed = true;
  options.sealing_enclave = &producer;
  options.seal_policy = sgx::SealPolicy::kMrEnclave;
  AuditLog log(options, TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(log.Recover().ok());
  FillLog(log, 1, 10);
  size_t deleted = 0;
  ASSERT_TRUE(log.Trim({"DELETE FROM updates WHERE time <= 5"}, &deleted).ok());
  EXPECT_EQ(deleted, 5u);
  auto sealed = AuditLog::ReadArchivedEntries(path, {}, &producer, sgx::SealPolicy::kMrEnclave);
  ASSERT_TRUE(sealed.ok()) << sealed.status().message();
  EXPECT_EQ(sealed->size(), 5u);
  // Without the identity the seal stays shut.
  EXPECT_FALSE(AuditLog::ReadArchivedEntries(path).ok());
}

TEST(TrimArchive, RestartAfterTrimRecoversPostTrimLog) {
  const std::string path = FreshPath("trim_restart.log");
  AuditLogOptions options = SegmentedOptions(path, /*segment_bytes=*/512);
  options.archive_trimmed = true;
  options.snapshot_interval_bytes = 1024;
  {
    AuditLog log(options, TestKey());
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Recover().ok());
    FillLog(log, 1, 30);
    size_t deleted = 0;
    ASSERT_TRUE(log.Trim({"DELETE FROM updates WHERE time <= 20"}, &deleted).ok());
    ASSERT_EQ(deleted, 20u);
  }
  AuditLog log(options, TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  AuditLog::RecoveryInfo info;
  ASSERT_TRUE(log.Recover(&info).ok());
  EXPECT_EQ(log.entry_count(), 10u);
  // Archives survive the restart: full history still reaches back past
  // the trim.
  auto history = AuditLog::ReadFullHistory(path);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 30u);
  // And the next trim appends archive index 2 (not overwriting 0/1).
  FillLog(log, 31, 5);
  size_t deleted = 0;
  ASSERT_TRUE(log.Trim({"DELETE FROM updates WHERE time <= 25"}, &deleted).ok());
  EXPECT_EQ(log.archive_count(), ListArchiveFiles(path).size());
  history = AuditLog::ReadFullHistory(path);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 35u);
}

// --- shard-set epoch anchoring under crash ---

// Minimal SSM for the anchoring tests: one row per pair, no invariants.
// What is under test here is the epoch protocol, not checking.
class OpsModule : public ServiceModule {
 public:
  std::string name() const override { return "ops"; }
  std::vector<std::string> Schema() const override { return {"CREATE TABLE ops(time, body)"}; }
  std::vector<Invariant> Invariants() const override { return {}; }
  std::vector<std::string> TrimmingQueries() const override { return {}; }
  void Log(std::string_view request, std::string_view /*response*/, int64_t /*time*/,
           std::vector<LogTuple>* out) override {
    out->push_back(LogTuple{"ops", {db::Value(std::string(request))}});
  }
};

std::string FreshShardBase(const std::string& name, size_t shards) {
  std::string base = std::string(::testing::TempDir()) + "/" + name;
  for (size_t k = 0; k < shards; ++k) {
    RemoveLogFiles(base + ".shard" + std::to_string(k));
  }
  std::remove((base + ".epoch").c_str());
  return base;
}

ShardSetOptions ShardOptions(const std::string& base, size_t shards = 3) {
  ShardSetOptions options;
  options.shards = shards;
  options.libseal.enclave.inject_costs = false;
  options.libseal.use_async_calls = false;
  options.libseal.audit_log = SegmentedOptions(base);  // kDisk + recover
  options.libseal.logger.check_interval = 0;
  options.epoch_counter.inject_latency = false;
  options.recover = true;
  return options;
}

std::function<std::unique_ptr<ServiceModule>()> OpsFactory() {
  return [] { return std::make_unique<OpsModule>(); };
}

void PumpPairs(ShardSet& set, uint64_t first_key, int n) {
  for (int i = 0; i < n; ++i) {
    uint64_t key = first_key + static_cast<uint64_t>(i);
    auto r = set.OnPair(key, "op-" + std::to_string(key), "ok", false);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

size_t TotalEntries(ShardSet& set) {
  size_t total = 0;
  for (size_t k = 0; k < set.shard_count(); ++k) {
    total += set.logger(k)->log().entry_count();
  }
  return total;
}

// The crash window the file comment in shard.h argues about: the process
// dies AFTER every shard committed its head (phase 1) but BEFORE the epoch
// record was written (phase 2). The shards are then AHEAD of the record on
// disk — recovery must accept that as consistent (the heads are genuine)
// and re-anchor at the recovered state. Nothing is lost, nothing rolls
// back.
TEST(ShardRecovery, CrashBetweenHeadCommitAndEpochRecordAdvancesAll) {
  const std::string base = FreshShardBase("shard_crash_window.log", 3);
  {
    ShardSet set(ShardOptions(base), OpsFactory());
    ASSERT_TRUE(set.Init().ok());
    PumpPairs(set, 0, 30);
    ASSERT_TRUE(set.AnchorEpoch().ok());
    // More traffic past the anchor, then the crash: heads commit, the
    // record write never happens — the record on disk stays the stale
    // 30-entry anchor.
    PumpPairs(set, 1000, 15);
    set.crash_after_head_commit_for_testing = true;
    auto crashed = set.AnchorEpoch();
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kUnavailable);
  }
  ShardSet set(ShardOptions(base), OpsFactory());
  ASSERT_TRUE(set.Init().ok()) << "recovery must accept shards AHEAD of the anchored record";
  EXPECT_EQ(TotalEntries(set), 45u);  // nothing rolled back, nothing lost
  // Init re-anchored the recovered state: the record now matches the live
  // shard heads, not the stale pre-crash ones.
  auto rec = ShardSet::ReadEpochRecord(set.epoch_path(), set.anchor_public_key());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->heads.size(), 3u);
  for (const ShardHeadInfo& head : rec->heads) {
    EXPECT_EQ(head.entry_count, set.logger(head.shard)->log().entry_count());
    EXPECT_EQ(head.chain_head, set.logger(head.shard)->log().chain_head());
  }
  // And the recovered set keeps accepting traffic and anchoring.
  PumpPairs(set, 2000, 5);
  ASSERT_TRUE(set.AnchorEpoch().ok());
  EXPECT_EQ(TotalEntries(set), 50u);
}

// A clean restart recovers every shard and re-anchors at exactly the
// recovered heads.
TEST(ShardRecovery, CleanRestartReanchorsAtRecoveredHeads) {
  const std::string base = FreshShardBase("shard_clean_restart.log", 3);
  {
    ShardSet set(ShardOptions(base), OpsFactory());
    ASSERT_TRUE(set.Init().ok());
    PumpPairs(set, 0, 24);
    ASSERT_TRUE(set.AnchorEpoch().ok());
  }
  ShardSet set(ShardOptions(base), OpsFactory());
  ASSERT_TRUE(set.Init().ok());
  EXPECT_EQ(TotalEntries(set), 24u);
  auto rec = ShardSet::ReadEpochRecord(set.epoch_path(), set.anchor_public_key());
  ASSERT_TRUE(rec.ok());
  for (const ShardHeadInfo& head : rec->heads) {
    EXPECT_EQ(head.entry_count, set.logger(head.shard)->log().entry_count());
  }
}

// The attack the shared epoch record exists to catch: per-shard ROTE
// counters accept a shard restored from an old backup together with its
// old counter state, but the anchored head vector pins ALL shards to one
// epoch — a shard recovering BEHIND its anchored head is a rollback.
TEST(ShardRecovery, IndividuallyRolledBackShardIsDetected) {
  const std::string base = FreshShardBase("shard_rollback.log", 3);
  {
    ShardSet set(ShardOptions(base), OpsFactory());
    ASSERT_TRUE(set.Init().ok());
    PumpPairs(set, 0, 30);
    ASSERT_TRUE(set.AnchorEpoch().ok());
  }
  // The operator "restores" shard 1 from before any traffic existed.
  RemoveLogFiles(base + ".shard1");
  ShardSet set(ShardOptions(base), OpsFactory());
  Status s = set.Init();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("rolled back past anchored epoch"), std::string::npos)
      << s.message();
}

// Modifying a shard's entries without changing its length is equally
// caught: the anchored chain head no longer matches.
TEST(ShardRecovery, AnchoredChainHeadPinsEntryContents) {
  const std::string base = FreshShardBase("shard_content.log", 2);
  {
    ShardSet set(ShardOptions(base, 2), OpsFactory());
    ASSERT_TRUE(set.Init().ok());
    PumpPairs(set, 0, 20);
    ASSERT_TRUE(set.AnchorEpoch().ok());
  }
  // Find the shard 0 segment files and flip one record byte. Per-shard
  // recovery itself rejects the forged chain before the epoch check runs —
  // either way Init must fail.
  const std::string shard0 = base + ".shard0";
  const auto segments = ListSegmentFiles(shard0);
  ASSERT_FALSE(segments.empty());
  auto data = ReadFileBytes(SegmentFilePath(shard0, segments[0]));
  ASSERT_TRUE(data.ok());
  ASSERT_GT(data->size(), kSegmentHeaderSize + 10);
  (*data)[kSegmentHeaderSize + 9] ^= 0x01;
  ASSERT_TRUE(DurableWriteFile(SegmentFilePath(shard0, segments[0]), *data, /*append=*/false,
                               /*sync=*/false)
                  .ok());
  ShardSet set(ShardOptions(base, 2), OpsFactory());
  EXPECT_FALSE(set.Init().ok());
}

TEST(Recovery, DoubleRecoverIsRejected) {
  const std::string path = FreshPath("recover_twice.log");
  AuditLog log(SegmentedOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(log.Recover().ok());
  EXPECT_FALSE(log.Recover().ok());
}

}  // namespace
}  // namespace seal::core
