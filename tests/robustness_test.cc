// Robustness: hostile and malformed inputs must produce clean errors,
// never crashes, hangs, or bogus audit entries. Random-input sweeps use
// deterministic seeds so failures reproduce.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "src/common/rng.h"
#include "src/core/logger.h"
#include "src/db/database.h"
#include "src/db/parser.h"
#include "src/http/http.h"
#include "src/json/json.h"
#include "src/net/net.h"
#include "src/ssm/dropbox_ssm.h"
#include "src/ssm/git_ssm.h"
#include "src/ssm/messaging_ssm.h"
#include "src/ssm/owncloud_ssm.h"
#include "src/tls/tls.h"
#include "src/tls/x509.h"

namespace seal {
namespace {

std::string RandomGarbage(SplitMix64& rng, size_t max_len) {
  std::string s;
  size_t n = rng.Below(max_len);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng.Next()));
  }
  return s;
}

std::string RandomSqlish(SplitMix64& rng) {
  static const char* kFragments[] = {
      "SELECT", "FROM",  "WHERE",    "GROUP BY", "ORDER",  "(",     ")",      ",",
      "*",      "t",     "a.b",      "COUNT",    "'str",   "123",   "1.5.2",  "=",
      "!=",     "IN",    "NOT",      "NULL",     "JOIN",   "ON",    ";",      "--x",
      "LIMIT",  "VALUES", "INSERT",  "DELETE",   "\"id",   "||",    "BETWEEN"};
  std::string s;
  size_t n = rng.Below(12) + 1;
  for (size_t i = 0; i < n; ++i) {
    s += kFragments[rng.Below(std::size(kFragments))];
    s.push_back(' ');
  }
  return s;
}

TEST(Robustness, SqlParserNeverCrashesOnGarbage) {
  SplitMix64 rng(42);
  for (int i = 0; i < 3000; ++i) {
    std::string input = (i % 2 == 0) ? RandomGarbage(rng, 120) : RandomSqlish(rng);
    auto result = db::ParseStatement(input);  // must return, ok or not
    (void)result;
  }
}

TEST(Robustness, DatabaseExecuteNeverCrashesOnGarbage) {
  db::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t(a, b)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'x')").ok());
  SplitMix64 rng(43);
  for (int i = 0; i < 1500; ++i) {
    (void)db.Execute(RandomSqlish(rng));
  }
  // The table survived the bombardment.
  auto rows = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].AsInt(), 1);
}

TEST(Robustness, ExecutorErrorPaths) {
  db::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t(a)").ok());
  // Name resolution happens during row evaluation (seadb is an
  // interpreter), so the table must be non-empty for these to trip.
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db.Execute("SELECT nope FROM t").ok());            // unknown column
  EXPECT_FALSE(db.Execute("SELECT x.a FROM t").ok());             // unknown qualifier
  EXPECT_FALSE(db.Execute("SELECT * FROM missing").ok());         // unknown table
  EXPECT_FALSE(db.Execute("INSERT INTO t(nope) VALUES (1)").ok());
  EXPECT_FALSE(db.Execute("DELETE FROM missing").ok());
  EXPECT_FALSE(db.Execute("UPDATE t SET nope = 1").ok());
  EXPECT_FALSE(db.Execute("SELECT MAX(a) FROM t WHERE MAX(a) = 1").ok());  // aggregate in WHERE
}

TEST(Robustness, JsonParserNeverCrashesOnGarbage) {
  SplitMix64 rng(44);
  for (int i = 0; i < 3000; ++i) {
    (void)json::Parse(RandomGarbage(rng, 150));
  }
  // Deeply nested input parses or errors without stack issues.
  std::string deep(2000, '[');
  (void)json::Parse(deep);
}

TEST(Robustness, HttpParserNeverCrashesOnGarbage) {
  SplitMix64 rng(45);
  for (int i = 0; i < 3000; ++i) {
    std::string g = RandomGarbage(rng, 200);
    (void)http::ParseRequest(g);
    (void)http::ParseResponse(g);
  }
}

TEST(Robustness, SsmsIgnoreGarbagePairsAcrossAllModules) {
  std::vector<std::unique_ptr<core::ServiceModule>> modules;
  modules.push_back(std::make_unique<ssm::GitModule>());
  modules.push_back(std::make_unique<ssm::OwnCloudModule>());
  modules.push_back(std::make_unique<ssm::DropboxModule>());
  modules.push_back(std::make_unique<ssm::MessagingModule>());
  SplitMix64 rng(46);
  for (auto& module : modules) {
    for (int i = 0; i < 300; ++i) {
      std::vector<core::LogTuple> tuples;
      module->Log(RandomGarbage(rng, 150), RandomGarbage(rng, 150), i + 1, &tuples);
      EXPECT_TRUE(tuples.empty()) << module->name() << " logged tuples for garbage";
    }
    // Half-valid: a real-looking request with a garbage response.
    std::vector<core::LogTuple> tuples;
    module->Log("GET /repo/info/refs HTTP/1.1\r\n\r\n", RandomGarbage(rng, 80), 1, &tuples);
    // No crash; whatever is logged must match the schema arity + 1 (time).
  }
}

TEST(Robustness, SsmsTolerateValidHttpWithWrongJson) {
  ssm::DropboxModule dropbox;
  std::vector<core::LogTuple> tuples;
  http::HttpRequest req;
  req.method = "POST";
  req.target = "/commit_batch";
  req.body = "{not json";
  http::HttpResponse rsp;
  dropbox.Log(req.Serialize(), rsp.Serialize(), 1, &tuples);
  EXPECT_TRUE(tuples.empty());
  // Valid JSON of the wrong shape: no commits array.
  req.body = R"({"account": 5, "commits": "not-an-array"})";
  dropbox.Log(req.Serialize(), rsp.Serialize(), 2, &tuples);
  EXPECT_TRUE(tuples.empty());
}

TEST(Robustness, TlsServerRejectsGarbageClients) {
  tls::CertifiedKey ca =
      tls::MakeSelfSignedCa("Rob CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
  crypto::EcdsaPrivateKey key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("srv"));
  tls::Certificate cert = tls::IssueCertificate(ca, "rob", key.public_key(), 2);
  SplitMix64 rng(47);
  for (int trial = 0; trial < 10; ++trial) {
    auto [client_stream, server_stream] = net::CreateStreamPair();
    tls::StreamBio server_bio(server_stream.get());
    tls::TlsConfig server_config;
    server_config.certificate = cert;
    server_config.private_key = key;
    tls::TlsConnection server(&server_bio, &server_config, tls::Role::kServer);
    std::thread garbage_client([&, &client_stream = client_stream] {
      // A syntactically valid record header with random contents, then
      // random bytes, then close.
      Bytes junk = ToBytes(RandomGarbage(rng, 200));
      Bytes frame = {22, 3, 3, 0, static_cast<uint8_t>(junk.size())};
      client_stream->Write(frame);
      client_stream->Write(junk);
      client_stream->Close();
    });
    EXPECT_FALSE(server.Handshake().ok());
    garbage_client.join();
  }
}

TEST(Robustness, TlsClientRejectsGarbageServer) {
  tls::CertifiedKey ca =
      tls::MakeSelfSignedCa("Rob CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
  auto [client_stream, server_stream] = net::CreateStreamPair();
  tls::StreamBio client_bio(client_stream.get());
  tls::TlsConfig client_config;
  client_config.trusted_roots = {ca.cert};
  tls::TlsConnection client(&client_bio, &client_config, tls::Role::kClient);
  std::thread fake_server([&, &server_stream = server_stream] {
    uint8_t buf[1024];
    (void)server_stream->Read(buf, sizeof(buf));  // swallow ClientHello
    server_stream->Write(std::string_view("definitely not TLS"));
    server_stream->Close();
  });
  EXPECT_FALSE(client.Handshake().ok());
  fake_server.join();
}

TEST(Robustness, CorruptLogEntriesRejectedNotCrashing) {
  SplitMix64 rng(48);
  for (int trial = 0; trial < 500; ++trial) {
    std::string g = RandomGarbage(rng, 100);
    Bytes bytes(g.begin(), g.end());
    size_t off = 0;
    (void)core::LogEntry::Deserialize(bytes, off);
  }
}

TEST(Robustness, DatabaseDeserializeFuzz) {
  SplitMix64 rng(49);
  for (int trial = 0; trial < 500; ++trial) {
    std::string g = RandomGarbage(rng, 120);
    Bytes bytes(g.begin(), g.end());
    (void)db::Database::Deserialize(bytes);
  }
}

}  // namespace
}  // namespace seal
