// §3.2: merging partial logs from multiple LibSEAL instances before
// invariant checking. The key scenario: a client's pushes land on one
// instance and its fetches on another (a load balancer round-robins), so
// NEITHER partial log alone can check soundness -- only the merged view.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/log_merge.h"
#include "src/core/logger.h"
#include "src/services/git_service.h"
#include "src/ssm/git_ssm.h"

namespace seal::core {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// One LibSEAL instance: its own log key, counter, persisted log.
struct Instance {
  explicit Instance(const std::string& name)
      : key(crypto::EcdsaPrivateKey::FromSeed(ToBytes("merge-" + name))),
        path(TempPath("merge_" + name + ".log")) {
    AuditLogOptions log_options;
    log_options.mode = PersistenceMode::kDisk;
    log_options.path = path;
    log_options.counter_options.inject_latency = false;
    LoggerOptions logger_options;
    logger_options.check_interval = 0;  // checking happens after the merge
    logger = std::make_unique<AuditLogger>(std::make_unique<ssm::GitModule>(), log_options,
                                           logger_options, key);
    EXPECT_TRUE(logger->Init().ok());
  }

  void Pump(services::GitBackend& backend, const http::HttpRequest& request) {
    http::HttpResponse response = backend.Handle(request);
    auto r = logger->OnPair(request.Serialize(), response.Serialize(), false);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  PartialLog Partial() const {
    PartialLog partial;
    partial.path = path;
    partial.log_public_key = key.public_key();
    partial.counter = &logger->log().counter();
    return partial;
  }

  crypto::EcdsaPrivateKey key;
  std::string path;
  std::unique_ptr<AuditLogger> logger;
};

// Runs the Git invariants on a merged database.
size_t MergedViolations(db::Database& db) {
  ssm::GitModule module;
  size_t violations = 0;
  for (const Invariant& invariant : module.Invariants()) {
    auto r = db.Execute(invariant.query);
    EXPECT_TRUE(r.ok()) << invariant.name << ": " << r.status().ToString();
    if (r.ok()) {
      violations += r->rows.size();
    }
  }
  return violations;
}

TEST(LogMerge, SplitTrafficMergesAndChecksClean) {
  services::GitBackend backend;  // ONE service state behind both instances
  Instance a("clean_a");
  Instance b("clean_b");
  // Pushes hit instance A, fetches hit instance B.
  a.Pump(backend, services::MakeGitPush("repo", {{"main", "c1"}}));
  a.Pump(backend, services::MakeGitPush("repo", {{"main", "c2"}}));
  b.Pump(backend, services::MakeGitFetch("repo"));

  ssm::GitModule module;
  auto merged = MergeVerifiedLogs({a.Partial(), b.Partial()}, module);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->instances, 2u);
  EXPECT_EQ(merged->total_entries, 3u);  // 2 updates + 1 advertisement
  EXPECT_EQ(MergedViolations(merged->database), 0u);
}

TEST(LogMerge, CrossInstanceRollbackOnlyVisibleAfterMerge) {
  services::GitBackend backend;
  Instance a("attack_a");
  Instance b("attack_b");
  a.Pump(backend, services::MakeGitPush("repo", {{"main", "c1"}}));
  a.Pump(backend, services::MakeGitPush("repo", {{"main", "c2"}}));
  backend.set_attack(services::GitBackend::Attack::kRollback);
  b.Pump(backend, services::MakeGitFetch("repo"));

  // Instance B alone has only the advertisement: its local invariants
  // cannot fire (no updates to compare against).
  auto local = b.logger->CheckInvariants();
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(local->clean());

  // The merged view reveals the rollback.
  ssm::GitModule module;
  auto merged = MergeVerifiedLogs({a.Partial(), b.Partial()}, module);
  ASSERT_TRUE(merged.ok());
  EXPECT_GT(MergedViolations(merged->database), 0u);
}

TEST(LogMerge, OrderPreservedWithinInstance) {
  services::GitBackend backend;
  Instance a("order_a");
  for (int i = 1; i <= 4; ++i) {
    a.Pump(backend, services::MakeGitPush("repo", {{"main", "c" + std::to_string(i)}}));
  }
  ssm::GitModule module;
  auto merged = MergeVerifiedLogs({a.Partial()}, module);
  ASSERT_TRUE(merged.ok());
  auto rows = merged->database.Execute("SELECT cid FROM updates ORDER BY time");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 4u);
  EXPECT_EQ(rows->rows[0][0].AsText(), "c1");
  EXPECT_EQ(rows->rows[3][0].AsText(), "c4");
}

TEST(LogMerge, TamperedPartialRejectsWholeMerge) {
  services::GitBackend backend;
  Instance a("tamper_a");
  Instance b("tamper_b");
  a.Pump(backend, services::MakeGitPush("repo", {{"main", "c1"}}));
  b.Pump(backend, services::MakeGitFetch("repo"));
  // Provider edits instance A's log.
  std::FILE* f = std::fopen(a.path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 25, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 25, SEEK_SET);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
  ssm::GitModule module;
  auto merged = MergeVerifiedLogs({a.Partial(), b.Partial()}, module);
  EXPECT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("instance 0"), std::string::npos);
}

TEST(LogMerge, WrongKeyRejected) {
  services::GitBackend backend;
  Instance a("wrongkey_a");
  a.Pump(backend, services::MakeGitPush("repo", {{"main", "c1"}}));
  PartialLog partial = a.Partial();
  partial.log_public_key =
      crypto::EcdsaPrivateKey::FromSeed(ToBytes("not-the-enclave")).public_key();
  ssm::GitModule module;
  EXPECT_FALSE(MergeVerifiedLogs({partial}, module).ok());
}

// Regression: two partials presenting the same (instance, counter round)
// must be rejected. Before the duplicate check, MergeVerifiedLogs would
// happily interleave the same shard log twice — both copies verify
// individually — and every entry counted double as "evidence".
TEST(LogMerge, DuplicatePartialRejected) {
  services::GitBackend backend;
  Instance a("dup_a");
  Instance b("dup_b");
  a.Pump(backend, services::MakeGitPush("repo", {{"main", "c1"}}));
  a.Pump(backend, services::MakeGitPush("repo", {{"main", "c2"}}));
  b.Pump(backend, services::MakeGitFetch("repo"));

  ssm::GitModule module;
  auto merged = MergeVerifiedLogs({a.Partial(), b.Partial(), a.Partial()}, module);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kPermissionDenied)
      << merged.status().ToString();
  EXPECT_NE(merged.status().message().find("duplicate partial log"), std::string::npos)
      << merged.status().message();
  // The message names both offending indices.
  EXPECT_NE(merged.status().message().find("instances 0 and 2"), std::string::npos)
      << merged.status().message();

  // The same set without the duplicate merges fine — the check keys on the
  // instance's log key, not on superficial path equality.
  auto clean = MergeVerifiedLogs({a.Partial(), b.Partial()}, module);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->total_entries, 3u);
}

TEST(LogMerge, EmptyInputYieldsEmptyDatabase) {
  ssm::GitModule module;
  auto merged = MergeVerifiedLogs({}, module);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->total_entries, 0u);
  auto rows = merged->database.Execute("SELECT * FROM updates");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->rows.empty());
}

}  // namespace
}  // namespace seal::core
