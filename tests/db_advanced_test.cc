// Deeper seadb coverage: view composition, NULL propagation through joins
// and aggregates, mixed-type ordering, DML with subqueries, and limits of
// the dialect (documented error behaviour).
#include <gtest/gtest.h>

#include "src/db/database.h"

namespace seal::db {
namespace {

QueryResult Exec(Database& db, std::string_view sql) {
  auto r = db.Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? std::move(*r) : QueryResult{};
}

class DbAdvancedTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(DbAdvancedTest, ViewOnView) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (2), (3), (4)");
  Exec(db_, "CREATE VIEW evens AS SELECT a FROM t WHERE a % 2 = 0");
  Exec(db_, "CREATE VIEW big_evens AS SELECT a FROM evens WHERE a > 2");
  QueryResult r = Exec(db_, "SELECT a FROM big_evens");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
}

TEST_F(DbAdvancedTest, ViewJoinedWithTable) {
  Exec(db_, "CREATE TABLE sales(region, amount)");
  Exec(db_, "CREATE TABLE quota(region, target)");
  Exec(db_, "INSERT INTO sales VALUES ('n', 5), ('n', 7), ('s', 4)");
  Exec(db_, "INSERT INTO quota VALUES ('n', 10), ('s', 6)");
  Exec(db_, "CREATE VIEW totals AS SELECT region, SUM(amount) AS total FROM sales GROUP BY region");
  QueryResult r = Exec(db_,
                       "SELECT q.region FROM quota q JOIN totals t ON t.region = q.region "
                       "WHERE t.total >= q.target");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "n");
}

TEST_F(DbAdvancedTest, NullsInJoinKeysNeverMatch) {
  Exec(db_, "CREATE TABLE a(k)");
  Exec(db_, "CREATE TABLE b(k)");
  Exec(db_, "INSERT INTO a VALUES (NULL), (1)");
  Exec(db_, "INSERT INTO b VALUES (NULL), (1)");
  EXPECT_EQ(Exec(db_, "SELECT * FROM a JOIN b ON a.k = b.k").rows.size(), 1u);
  EXPECT_EQ(Exec(db_, "SELECT * FROM a NATURAL JOIN b").rows.size(), 1u);
}

TEST_F(DbAdvancedTest, NullsInGroupByFormOneGroup) {
  Exec(db_, "CREATE TABLE t(k, v)");
  Exec(db_, "INSERT INTO t VALUES (NULL, 1), (NULL, 2), ('x', 3)");
  QueryResult r = Exec(db_, "SELECT k, SUM(v) FROM t GROUP BY k ORDER BY 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);  // NULL group summed 1+2
  EXPECT_EQ(r.rows[1][1].AsInt(), 3);
}

TEST_F(DbAdvancedTest, MixedTypeOrderingIsStableClassOrder) {
  Exec(db_, "CREATE TABLE t(v)");
  Exec(db_, "INSERT INTO t VALUES ('text'), (2), (NULL), (1.5)");
  QueryResult r = Exec(db_, "SELECT v FROM t ORDER BY v");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_TRUE(r.rows[0][0].is_null());       // NULL first
  EXPECT_DOUBLE_EQ(r.rows[1][0].AsReal(), 1.5);
  EXPECT_EQ(r.rows[2][0].AsInt(), 2);
  EXPECT_EQ(r.rows[3][0].AsText(), "text");  // text last
}

TEST_F(DbAdvancedTest, UpdateWithSubqueryPredicate) {
  Exec(db_, "CREATE TABLE t(id, v)");
  Exec(db_, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  Exec(db_, "UPDATE t SET v = v + 100 WHERE v = (SELECT MAX(v) FROM t)");
  QueryResult r = Exec(db_, "SELECT v FROM t ORDER BY v DESC LIMIT 1");
  EXPECT_EQ(r.rows[0][0].AsInt(), 130);
}

TEST_F(DbAdvancedTest, UpdateSnapshotSemantics) {
  // Assignments to earlier rows must not affect later predicates.
  Exec(db_, "CREATE TABLE t(v)");
  Exec(db_, "INSERT INTO t VALUES (1), (2)");
  QueryResult r = Exec(db_, "UPDATE t SET v = 2 WHERE v = 1");
  EXPECT_EQ(r.affected, 1u);  // only the original 1, not the freshly-set 2
}

TEST_F(DbAdvancedTest, DeleteWithLikeAndBetween) {
  Exec(db_, "CREATE TABLE files(name, size)");
  Exec(db_, "INSERT INTO files VALUES ('a.txt', 5), ('b.log', 50), ('c.txt', 500)");
  Exec(db_, "DELETE FROM files WHERE name LIKE '%.txt' AND size BETWEEN 1 AND 100");
  QueryResult r = Exec(db_, "SELECT name FROM files ORDER BY name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsText(), "b.log");
  EXPECT_EQ(r.rows[1][0].AsText(), "c.txt");
}

TEST_F(DbAdvancedTest, LimitZeroAndOffsetPastEnd) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (2)");
  EXPECT_TRUE(Exec(db_, "SELECT a FROM t LIMIT 0").rows.empty());
  EXPECT_TRUE(Exec(db_, "SELECT a FROM t LIMIT 5 OFFSET 10").rows.empty());
  EXPECT_EQ(Exec(db_, "SELECT a FROM t LIMIT 100").rows.size(), 2u);
}

TEST_F(DbAdvancedTest, QualifiedStarExpansion) {
  Exec(db_, "CREATE TABLE a(x, y)");
  Exec(db_, "CREATE TABLE b(z)");
  Exec(db_, "INSERT INTO a VALUES (1, 2)");
  Exec(db_, "INSERT INTO b VALUES (3)");
  QueryResult r = Exec(db_, "SELECT a.*, b.z FROM a, b");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"x", "y", "z"}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][2].AsInt(), 3);
}

TEST_F(DbAdvancedTest, ExistsWithOuterAndInnerConditions) {
  Exec(db_, "CREATE TABLE orders(customer, total)");
  Exec(db_, "CREATE TABLE vips(customer)");
  Exec(db_, "INSERT INTO orders VALUES ('ann', 500), ('bob', 20)");
  Exec(db_, "INSERT INTO vips VALUES ('ann')");
  QueryResult r = Exec(db_,
                       "SELECT customer FROM orders o WHERE total > 100 AND "
                       "EXISTS (SELECT * FROM vips v WHERE v.customer = o.customer)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "ann");
}

TEST_F(DbAdvancedTest, CoalesceInWherePredicates) {
  Exec(db_, "CREATE TABLE t(a, fallback)");
  Exec(db_, "INSERT INTO t VALUES (NULL, 7), (3, 9)");
  QueryResult r = Exec(db_, "SELECT COALESCE(a, fallback) FROM t ORDER BY 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[1][0].AsInt(), 7);
}

TEST_F(DbAdvancedTest, HavingWithoutGroupBy) {
  Exec(db_, "CREATE TABLE t(a)");
  Exec(db_, "INSERT INTO t VALUES (1), (2)");
  // Aggregate-only query with HAVING: one group over the whole table.
  EXPECT_EQ(Exec(db_, "SELECT SUM(a) FROM t HAVING COUNT(*) > 1").rows.size(), 1u);
  EXPECT_EQ(Exec(db_, "SELECT SUM(a) FROM t HAVING COUNT(*) > 5").rows.size(), 0u);
}

TEST_F(DbAdvancedTest, StringQuotingRoundTrip) {
  Exec(db_, "CREATE TABLE t(s)");
  Exec(db_, "INSERT INTO t VALUES ('it''s a ''quoted'' string')");
  QueryResult r = Exec(db_, "SELECT s FROM t");
  EXPECT_EQ(r.rows[0][0].AsText(), "it's a 'quoted' string");
  r = Exec(db_, "SELECT * FROM t WHERE s = 'it''s a ''quoted'' string'");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(DbAdvancedTest, SelfJoinThreeWay) {
  Exec(db_, "CREATE TABLE n(v)");
  Exec(db_, "INSERT INTO n VALUES (1), (2), (3)");
  // Ordered triples a < b < c: exactly one from {1,2,3}.
  QueryResult r = Exec(db_,
                       "SELECT a.v, b.v, c.v FROM n a JOIN n b ON a.v < b.v "
                       "JOIN n c ON b.v < c.v");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][2].AsInt(), 3);
}

TEST_F(DbAdvancedTest, InSubqueryWithCorrelation) {
  Exec(db_, "CREATE TABLE emp(name, dept)");
  Exec(db_, "CREATE TABLE alumni(name, dept)");
  Exec(db_, "INSERT INTO emp VALUES ('a', 'x'), ('b', 'y')");
  Exec(db_, "INSERT INTO alumni VALUES ('a', 'x'), ('b', 'z')");
  // Employees whose name appears among alumni OF THE SAME department.
  QueryResult r = Exec(db_,
                       "SELECT name FROM emp e WHERE name IN "
                       "(SELECT name FROM alumni WHERE dept = e.dept)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "a");
}

TEST_F(DbAdvancedTest, AggregateOfExpression) {
  Exec(db_, "CREATE TABLE t(a, b)");
  Exec(db_, "INSERT INTO t VALUES (1, 2), (3, 4)");
  QueryResult r = Exec(db_, "SELECT SUM(a * b), MAX(a + b) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 14);
  EXPECT_EQ(r.rows[0][1].AsInt(), 7);
}

TEST_F(DbAdvancedTest, OrderByAggregateInGroupedQuery) {
  Exec(db_, "CREATE TABLE t(k, v)");
  Exec(db_, "INSERT INTO t VALUES ('a', 1), ('b', 5), ('a', 2)");
  QueryResult r = Exec(db_, "SELECT k FROM t GROUP BY k ORDER BY SUM(v) DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsText(), "b");
}

TEST_F(DbAdvancedTest, DuplicateTableNamesRejected) {
  Exec(db_, "CREATE TABLE t(a)");
  EXPECT_FALSE(db_.Execute("CREATE VIEW t AS SELECT 1").ok());
  Exec(db_, "CREATE VIEW v AS SELECT a FROM t");
  EXPECT_FALSE(db_.Execute("CREATE TABLE v(a)").ok());
}

TEST_F(DbAdvancedTest, ConcatBuildsKeysForComparison) {
  Exec(db_, "CREATE TABLE t(a, b)");
  Exec(db_, "INSERT INTO t VALUES ('x', 1), ('y', 2)");
  QueryResult r = Exec(db_, "SELECT a || '-' || b FROM t ORDER BY 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsText(), "x-1");
  EXPECT_EQ(r.rows[1][0].AsText(), "y-2");
}

}  // namespace
}  // namespace seal::db
