#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/asyncall/asyncall.h"
#include "src/sgx/enclave.h"

namespace seal::asyncall {
namespace {

sgx::EnclaveConfig FastConfig() {
  sgx::EnclaveConfig config;
  config.inject_costs = false;
  return config;
}

TEST(AsyncCall, BasicEcall) {
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  int observed = 0;
  int id = enclave.RegisterEcall("set", [&](void* d) { observed = *static_cast<int*>(d); });
  AsyncCallRuntime::Options options;
  options.enclave_threads = 1;
  options.tasks_per_thread = 4;
  AsyncCallRuntime runtime(&enclave, options);
  runtime.Start();
  int value = 99;
  ASSERT_TRUE(runtime.AsyncEcall(id, &value).ok());
  EXPECT_EQ(observed, 99);
  runtime.Stop();
}

TEST(AsyncCall, NotStartedFails) {
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  int id = enclave.RegisterEcall("nop", [](void*) {});
  AsyncCallRuntime runtime(&enclave, AsyncCallRuntime::Options{});
  EXPECT_FALSE(runtime.AsyncEcall(id, nullptr).ok());
}

TEST(AsyncCall, UnknownEcallFails) {
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  AsyncCallRuntime runtime(&enclave, AsyncCallRuntime::Options{});
  runtime.Start();
  EXPECT_FALSE(runtime.AsyncEcall(12345, nullptr).ok());
  runtime.Stop();
}

TEST(AsyncCall, HandlerRunsInsideEnclave) {
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  bool inside = false;
  int id = enclave.RegisterEcall("check", [&](void*) { inside = sgx::Enclave::InsideEnclave(); });
  AsyncCallRuntime runtime(&enclave, AsyncCallRuntime::Options{});
  runtime.Start();
  ASSERT_TRUE(runtime.AsyncEcall(id, nullptr).ok());
  EXPECT_TRUE(inside);
  runtime.Stop();
}

TEST(AsyncCall, OnlyOneTransitionPairPerWorker) {
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  int id = enclave.RegisterEcall("nop", [](void*) {});
  AsyncCallRuntime::Options options;
  options.enclave_threads = 2;
  AsyncCallRuntime runtime(&enclave, options);
  runtime.Start();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(runtime.AsyncEcall(id, nullptr).ok());
  }
  // 2 worker entries only; the 50 async-ecalls do not touch the gate.
  EXPECT_EQ(enclave.stats().ecalls, 2u);
  runtime.Stop();
}

TEST(AsyncCall, AsyncOcallExecutedByAppThread) {
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  std::thread::id app_thread = std::this_thread::get_id();
  std::thread::id ocall_thread;
  int ocall_id = enclave.RegisterOcall("where", [&](void*) {
    ocall_thread = std::this_thread::get_id();
  });
  Status ocall_status = Internal("unset");
  int ecall_id = enclave.RegisterEcall("do", [&](void*) {
    ocall_status = AsyncCallRuntime::AsyncOcall(ocall_id, nullptr);
  });
  AsyncCallRuntime runtime(&enclave, AsyncCallRuntime::Options{});
  runtime.Start();
  ASSERT_TRUE(runtime.AsyncEcall(ecall_id, nullptr).ok());
  EXPECT_TRUE(ocall_status.ok());
  EXPECT_EQ(ocall_thread, app_thread);  // the binding invariant from §4.3
  runtime.Stop();
}

TEST(AsyncCall, AsyncOcallOutsideHandlerFails) {
  EXPECT_FALSE(AsyncCallRuntime::AsyncOcall(0, nullptr).ok());
}

TEST(AsyncCall, ManyConcurrentCallers) {
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  std::atomic<int> sum{0};
  int ocall_id = enclave.RegisterOcall("bump", [&](void* d) {
    sum.fetch_add(*static_cast<int*>(d));
  });
  int ecall_id = enclave.RegisterEcall("work", [&](void* d) {
    // Each ecall performs an ocall, exercising the full Fig. 4 protocol.
    (void)AsyncCallRuntime::AsyncOcall(ocall_id, d);
  });
  AsyncCallRuntime::Options options;
  options.enclave_threads = 2;
  options.tasks_per_thread = 8;
  AsyncCallRuntime runtime(&enclave, options);
  runtime.Start();
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      int one = 1;
      for (int i = 0; i < kCallsPerThread; ++i) {
        ASSERT_TRUE(runtime.AsyncEcall(ecall_id, &one).ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(sum.load(), kThreads * kCallsPerThread);
  runtime.Stop();
}

TEST(AsyncCall, MultipleOcallsWithinOneEcall) {
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  int count = 0;
  int ocall_id = enclave.RegisterOcall("tick", [&](void*) { ++count; });
  int ecall_id = enclave.RegisterEcall("multi", [&](void*) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(AsyncCallRuntime::AsyncOcall(ocall_id, nullptr).ok());
    }
  });
  AsyncCallRuntime runtime(&enclave, AsyncCallRuntime::Options{});
  runtime.Start();
  ASSERT_TRUE(runtime.AsyncEcall(ecall_id, nullptr).ok());
  EXPECT_EQ(count, 5);
  runtime.Stop();
}

TEST(AsyncCall, RestartWorks) {
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  int runs = 0;
  int id = enclave.RegisterEcall("inc", [&](void*) { ++runs; });
  AsyncCallRuntime runtime(&enclave, AsyncCallRuntime::Options{});
  runtime.Start();
  ASSERT_TRUE(runtime.AsyncEcall(id, nullptr).ok());
  runtime.Stop();
  runtime.Start();
  ASSERT_TRUE(runtime.AsyncEcall(id, nullptr).ok());
  runtime.Stop();
  EXPECT_EQ(runs, 2);
}

TEST(AsyncCall, SlotIndexStaysInRangeAcrossTicketWrap) {
  // The ticket counter is unsigned so the wrap is well-defined; the mapped
  // slot must stay in [0, max_app_threads) on both sides of it. (The old
  // signed counter overflowed into UB here and could go negative.)
  for (int max : {1, 7, 64}) {
    for (uint32_t ticket : {uint32_t{0}, uint32_t{1}, UINT32_MAX - 1, UINT32_MAX}) {
      int slot = AsyncCallRuntime::SlotIndexForTicket(ticket, max);
      EXPECT_GE(slot, 0) << "ticket " << ticket << " max " << max;
      EXPECT_LT(slot, max) << "ticket " << ticket << " max " << max;
    }
  }
  // Power-of-two slot arrays cycle cleanly through the wrap: ...62, 63, 0...
  EXPECT_EQ(AsyncCallRuntime::SlotIndexForTicket(UINT32_MAX, 64), 63);
  EXPECT_EQ(AsyncCallRuntime::SlotIndexForTicket(0, 64), 0);
}

TEST(AsyncCall, EcallsKeepWorkingThroughTicketWrap) {
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  std::atomic<int> runs{0};
  int id = enclave.RegisterEcall("inc", [&](void*) { runs.fetch_add(1); });
  AsyncCallRuntime::Options options;
  options.enclave_threads = 1;
  options.tasks_per_thread = 4;
  options.max_app_threads = 8;
  AsyncCallRuntime runtime(&enclave, options);
  runtime.set_next_slot_for_testing(UINT32_MAX - 2);
  runtime.Start();
  // Fresh threads so every caller draws a new ticket; the sequence crosses
  // UINT32_MAX -> 0 mid-batch.
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] { ASSERT_TRUE(runtime.AsyncEcall(id, nullptr).ok()); });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(runs.load(), kThreads);
  runtime.Stop();
}

TEST(AsyncCall, StopFailsUnclaimedPendingCall) {
  // Regression: Stop() used to leave a posted-but-unclaimed async-ecall in
  // kEcallPending forever -- the workers exited without claiming it and
  // nothing ever signalled the slot, stranding the application thread. With
  // one worker running one task we can pin the only task on a gated handler
  // and guarantee the second call is still unclaimed when Stop() lands.
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  std::atomic<bool> in_handler{false};
  std::atomic<bool> release{false};
  int gate_id = enclave.RegisterEcall("gate", [&](void*) {
    in_handler.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  int nop_id = enclave.RegisterEcall("nop", [](void*) {});
  AsyncCallRuntime::Options options;
  options.enclave_threads = 1;
  options.tasks_per_thread = 1;
  options.max_app_threads = 4;
  AsyncCallRuntime runtime(&enclave, options);
  runtime.Start();

  Status status_a = Internal("unset");
  std::thread a([&] { status_a = runtime.AsyncEcall(gate_id, nullptr); });
  while (!in_handler.load()) {
    std::this_thread::yield();
  }
  // The single task is now busy; this call stays kEcallPending.
  Status status_b = Internal("unset");
  std::thread b([&] { status_b = runtime.AsyncEcall(nop_id, nullptr); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::thread stopper([&] { runtime.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  release.store(true);

  stopper.join();
  a.join();
  b.join();
  // The in-flight call drained; the unclaimed one failed instead of hanging.
  EXPECT_TRUE(status_a.ok()) << status_a.message();
  EXPECT_FALSE(status_b.ok());
  EXPECT_NE(status_b.message().find("stopped"), std::string::npos) << status_b.message();
}

TEST(AsyncCall, StopDrainsInFlightOcall) {
  // Regression: Stop() during an async-ocall round-trip must let the ocall
  // complete and the handler resume to kResultReady, not cut the protocol
  // mid-flight.
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  std::atomic<bool> in_ocall{false};
  std::atomic<bool> release{false};
  int ocall_id = enclave.RegisterOcall("slow", [&](void*) {
    in_ocall.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  Status ocall_status = Internal("unset");
  int ecall_id = enclave.RegisterEcall("do", [&](void*) {
    ocall_status = AsyncCallRuntime::AsyncOcall(ocall_id, nullptr);
  });
  AsyncCallRuntime::Options options;
  options.enclave_threads = 1;
  options.tasks_per_thread = 1;
  AsyncCallRuntime runtime(&enclave, options);
  runtime.Start();

  Status status = Internal("unset");
  std::thread app([&] { status = runtime.AsyncEcall(ecall_id, nullptr); });
  while (!in_ocall.load()) {
    std::this_thread::yield();
  }
  std::thread stopper([&] { runtime.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  release.store(true);
  stopper.join();
  app.join();

  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_TRUE(ocall_status.ok()) << ocall_status.message();
  // The runtime is down now: new calls fail fast rather than queueing.
  EXPECT_FALSE(runtime.AsyncEcall(ecall_id, nullptr).ok());
}

TEST(AsyncCall, StopRacingProducersNeverStrandsAndNeverLosesWork) {
  // Producers hammer the runtime while Stop() lands mid-stream. Every call
  // must terminate (this test hung under the old timeout-reliant wakeups),
  // and the drain invariant must hold: a call that reported Ok ran its
  // handler exactly once, a call that failed never ran it.
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  std::atomic<int> runs{0};
  int id = enclave.RegisterEcall("inc", [&](void*) { runs.fetch_add(1); });
  AsyncCallRuntime::Options options;
  options.enclave_threads = 2;
  options.tasks_per_thread = 2;
  options.max_app_threads = 4;  // fewer slots than producers: forced sharing
  AsyncCallRuntime runtime(&enclave, options);
  runtime.Start();

  constexpr int kProducers = 8;
  constexpr int kCallsPerProducer = 200;
  std::atomic<int> ok_calls{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kCallsPerProducer; ++i) {
        if (runtime.AsyncEcall(id, nullptr).ok()) {
          ok_calls.fetch_add(1);
        }
      }
    });
  }
  // Let some traffic through, then pull the plug under load.
  while (runs.load() < kProducers * kCallsPerProducer / 4) {
    std::this_thread::yield();
  }
  runtime.Stop();
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(runs.load(), ok_calls.load());
  EXPECT_GT(ok_calls.load(), 0);
}

TEST(AsyncCall, MultiProducerStressWithSharedSlots) {
  // Regression for the lost-wakeup ordering: with more producers than slots
  // every transition's notify must land for the protocol to make progress.
  // Under the old code (notify without the slot mutex held, Stop never
  // signalling) this configuration stalled for the full wait_for timeout on
  // a measurable fraction of calls and could hang outright.
  sgx::Enclave enclave(FastConfig(), ToBytes("code"), "signer");
  std::atomic<int> sum{0};
  int ocall_id = enclave.RegisterOcall("bump", [&](void* d) {
    sum.fetch_add(*static_cast<int*>(d));
  });
  int ecall_id = enclave.RegisterEcall("work", [&](void* d) {
    // Two ocall round-trips per ecall doubles the cross-thread handoffs.
    ASSERT_TRUE(AsyncCallRuntime::AsyncOcall(ocall_id, d).ok());
    ASSERT_TRUE(AsyncCallRuntime::AsyncOcall(ocall_id, d).ok());
  });
  AsyncCallRuntime::Options options;
  options.enclave_threads = 2;
  options.tasks_per_thread = 4;
  options.max_app_threads = 4;  // 16 producers share 4 slots
  AsyncCallRuntime runtime(&enclave, options);
  runtime.Start();
  constexpr int kThreads = 16;
  constexpr int kCallsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      int one = 1;
      for (int i = 0; i < kCallsPerThread; ++i) {
        ASSERT_TRUE(runtime.AsyncEcall(ecall_id, &one).ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(sum.load(), kThreads * kCallsPerThread * 2);
  runtime.Stop();
}

}  // namespace
}  // namespace seal::asyncall
