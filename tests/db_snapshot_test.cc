#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/db/database.h"
#include "src/db/row_store.h"
#include "src/obs/obs.h"

namespace seal::db {
namespace {

QueryResult Exec(Database& db, std::string_view sql) {
  auto r = db.Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  if (!r.ok()) {
    return QueryResult{};
  }
  return std::move(*r);
}

Row MakeRow(int64_t time, const std::string& text) {
  Row row;
  row.push_back(Value(time));
  row.push_back(Value(text));
  return row;
}

// --- RowStore ---

TEST(RowStore, AppendAndIndexAcrossChunks) {
  RowStore store;
  const size_t n = RowStore::kChunkRows * 3 + 17;  // spans chunk boundaries
  for (size_t i = 0; i < n; ++i) {
    store.push_back(MakeRow(static_cast<int64_t>(i), "r" + std::to_string(i)));
  }
  ASSERT_EQ(store.size(), n);
  for (size_t i = 0; i < n; i += 113) {
    EXPECT_EQ(store[i][0].AsInt(), static_cast<int64_t>(i));
  }
}

TEST(RowStore, ViewIsAStablePrefixUnderAppends) {
  RowStore store;
  for (int i = 0; i < 100; ++i) {
    store.push_back(MakeRow(i, "old"));
  }
  RowStore::View view = store.Snapshot();
  ASSERT_EQ(view.size(), 100u);
  // Appends past the watermark (including directory growth) must not move
  // or change the rows the view exposes.
  for (int i = 100; i < 2000; ++i) {
    store.push_back(MakeRow(i, "new"));
  }
  EXPECT_EQ(view.size(), 100u);
  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i][0].AsInt(), static_cast<int64_t>(i));
    EXPECT_EQ(view[i][1].AsText(), "old");
  }
}

TEST(RowStore, ViewSurvivesAssign) {
  RowStore store;
  for (int i = 0; i < 600; ++i) {
    store.push_back(MakeRow(i, "pre-trim"));
  }
  RowStore::View view = store.Snapshot();
  // Simulate a trim: the store is rebuilt with a single survivor. Fresh
  // chunks mean the view keeps reading the pre-trim rows.
  store.Assign({MakeRow(599, "survivor")});
  EXPECT_EQ(store.size(), 1u);
  ASSERT_EQ(view.size(), 600u);
  EXPECT_EQ(view[0][1].AsText(), "pre-trim");
  EXPECT_EQ(view[599][0].AsInt(), 599);
}

TEST(RowStore, ConcurrentReadersWhileAppending) {
  RowStore store;
  for (int i = 0; i < 256; ++i) {
    store.push_back(MakeRow(i, "x"));
  }
  RowStore::View view = store.Snapshot();
  std::atomic<bool> bad{false};
  std::thread reader([&] {
    for (int pass = 0; pass < 200; ++pass) {
      for (size_t i = 0; i < view.size(); ++i) {
        if (view[i][0].AsInt() != static_cast<int64_t>(i)) {
          bad.store(true);
          return;
        }
      }
    }
  });
  // Single mutator (externally synchronised in real use) racing the reader.
  for (int i = 256; i < 6000; ++i) {
    store.push_back(MakeRow(i, "x"));
  }
  reader.join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(store.size(), 6000u);
}

TEST(RowsRef, RangeOverViewAndOwnedRows) {
  RowStore store;
  for (int i = 0; i < 10; ++i) {
    store.push_back(MakeRow(i, "v"));
  }
  RowsRef ranged(store.Snapshot(), 3, 7);
  ASSERT_EQ(ranged.size(), 4u);
  int64_t expect = 3;
  for (const Row& row : ranged) {
    EXPECT_EQ(row[0].AsInt(), expect++);
  }
  RowsRef owned(std::vector<Row>{MakeRow(42, "o")});
  ASSERT_EQ(owned.size(), 1u);
  EXPECT_EQ(owned[0][0].AsInt(), 42);
}

// --- database snapshots ---

Database MakeUpdatesDb(int rows) {
  Database db;
  Exec(db, "CREATE TABLE updates (time, branch, commit_id)");
  for (int i = 1; i <= rows; ++i) {
    Exec(db, "INSERT INTO updates VALUES (" + std::to_string(i) + ", 'main', 'c" +
                 std::to_string(i) + "')");
  }
  return db;
}

TEST(Snapshot, ReadsThePinnedPrefixOnly) {
  Database db = MakeUpdatesDb(5);
  Snapshot snap = db.CaptureSnapshot();
  Exec(db, "INSERT INTO updates VALUES (6, 'main', 'c6')");
  auto live = Exec(db, "SELECT count(*) FROM updates");
  EXPECT_EQ(live.rows[0][0].AsInt(), 6);
  auto snapped = db.ExecuteSnapshot("SELECT count(*) FROM updates", snap);
  ASSERT_TRUE(snapped.ok());
  EXPECT_EQ(snapped->rows[0][0].AsInt(), 5);
}

TEST(Snapshot, SurvivesDeleteAndFlagsStaleness) {
  Database db = MakeUpdatesDb(10);
  Snapshot snap = db.CaptureSnapshot();
  EXPECT_TRUE(db.SnapshotCurrent(snap));
  Exec(db, "DELETE FROM updates WHERE time <= 9");
  EXPECT_EQ(db.TableSize("updates"), 1u);
  EXPECT_FALSE(db.SnapshotCurrent(snap));  // trim epoch moved
  // The snapshot still sees all ten pre-trim rows.
  auto snapped = db.ExecuteSnapshot("SELECT time FROM updates ORDER BY time", snap);
  ASSERT_TRUE(snapped.ok());
  ASSERT_EQ(snapped->rows.size(), 10u);
  EXPECT_EQ(snapped->rows[0][0].AsInt(), 1);
  EXPECT_EQ(snapped->rows[9][0].AsInt(), 10);
}

TEST(Snapshot, MatchesLiveResultsOnAFrozenDatabase) {
  Database db = MakeUpdatesDb(50);
  Exec(db, "CREATE VIEW recent AS SELECT * FROM updates WHERE time > 40");
  Snapshot snap = db.CaptureSnapshot();
  for (std::string sql :
       {std::string("SELECT * FROM updates WHERE time > 17 ORDER BY time"),
        std::string("SELECT branch, count(*) FROM updates GROUP BY branch"),
        std::string("SELECT max(time) FROM updates")}) {
    auto live = Exec(db, sql);
    auto snapped = db.ExecuteSnapshot(sql, snap);
    ASSERT_TRUE(snapped.ok()) << sql;
    ASSERT_EQ(snapped->rows.size(), live.rows.size()) << sql;
    for (size_t i = 0; i < live.rows.size(); ++i) {
      for (size_t c = 0; c < live.rows[i].size(); ++c) {
        EXPECT_EQ(snapped->rows[i][c].Serialize(), live.rows[i][c].Serialize()) << sql;
      }
    }
  }
}

TEST(Snapshot, SortedViewDrivesTheIndexedFastPaths) {
  // A time-sorted pinned view doubles as the time index: MAX(time) and
  // ORDER BY time DESC LIMIT k must take the descending-walk fast path
  // instead of degrading to a full scan + sort (the correlated-subquery
  // shape of the Git soundness invariant, per outer row).
  obs::Registry::Global().Reset();
  Database db = MakeUpdatesDb(200);
  Snapshot snap = db.CaptureSnapshot();
  Exec(db, "INSERT INTO updates VALUES (201, 'main', 'c201')");  // past the pin
  for (std::string sql :
       {std::string("SELECT max(time) FROM updates"),
        std::string("SELECT commit_id FROM updates WHERE time < 150 ORDER BY time DESC LIMIT 1"),
        std::string("SELECT time, commit_id FROM updates ORDER BY time DESC LIMIT 3 OFFSET 2")}) {
    auto snapped = db.ExecuteSnapshot(sql, snap);
    ASSERT_TRUE(snapped.ok()) << sql;
    Tuning slow;
    slow.use_time_index = false;
    slow.use_hash_join = false;
    db.set_tuning(slow);
    auto general = db.ExecuteSnapshot(sql, snap);
    db.set_tuning(Tuning{});
    ASSERT_TRUE(general.ok()) << sql;
    ASSERT_EQ(snapped->rows.size(), general->rows.size()) << sql;
    for (size_t i = 0; i < general->rows.size(); ++i) {
      for (size_t c = 0; c < general->rows[i].size(); ++c) {
        EXPECT_EQ(snapped->rows[i][c].Serialize(), general->rows[i][c].Serialize()) << sql;
      }
    }
  }
  // The snapshot's max must come from the pinned prefix, not the live row.
  auto max_time = db.ExecuteSnapshot("SELECT max(time) FROM updates", snap);
  ASSERT_TRUE(max_time.ok());
  EXPECT_EQ(max_time->rows[0][0].AsInt(), 200);
  auto metrics = obs::Registry::Global().TakeSnapshot();
  EXPECT_GT(metrics.counter("seadb_fastpath_hits_total{kind=\"max_time\"}"), 0u);
  EXPECT_GT(metrics.counter("seadb_fastpath_hits_total{kind=\"order_by_time_limit\"}"), 0u);
}

TEST(Snapshot, TimeBoundNarrowingUsesTheSortedView) {
  obs::Registry::Global().Reset();
  Database db = MakeUpdatesDb(2000);  // large enough to make scans visible
  Snapshot snap = db.CaptureSnapshot();
  auto r = db.ExecuteSnapshot("SELECT count(*) FROM updates WHERE time > 1990", snap);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 10);
  auto metrics = obs::Registry::Global().TakeSnapshot();
  EXPECT_GT(metrics.counter("seadb_index_range_scans_total"), 0u);
  EXPECT_GT(metrics.counter("db_snapshot_reads_total"), 0u);
}

// --- prepared plans ---

TEST(PreparedPlans, FloorRebindMatchesExecuteWithTimeFloor) {
  Database db = MakeUpdatesDb(30);
  auto plan = db.Prepare("SELECT time FROM updates ORDER BY time", /*with_time_floor=*/true);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->has_floor_slot());
  for (int64_t floor : {0, 7, 29, 30}) {
    auto prepared = db.ExecutePrepared(*plan, floor);
    ASSERT_TRUE(prepared.ok());
    auto reference = db.ExecuteWithTimeFloor("SELECT time FROM updates ORDER BY time", floor);
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(prepared->rows.size(), reference->rows.size()) << "floor=" << floor;
    for (size_t i = 0; i < prepared->rows.size(); ++i) {
      EXPECT_EQ(prepared->rows[i][0].AsInt(), reference->rows[i][0].AsInt());
    }
  }
}

TEST(PreparedPlans, RejectsNonSelect) {
  Database db;
  Exec(db, "CREATE TABLE t (time)");
  EXPECT_FALSE(db.Prepare("INSERT INTO t VALUES (1)", false).ok());
  EXPECT_FALSE(db.Prepare("DELETE FROM t", true).ok());
}

TEST(PlanCache, HitsMissesAndEpochInvalidation) {
  obs::Registry::Global().Reset();
  Database db = MakeUpdatesDb(10);
  PlanCache cache;
  const std::string sql = "SELECT count(*) FROM updates";

  ASSERT_TRUE(cache.Execute(db, sql).ok());  // miss: first sight
  ASSERT_TRUE(cache.Execute(db, sql).ok());  // hit
  ASSERT_TRUE(cache.Execute(db, sql, 5).ok());  // miss: floored variant
  ASSERT_TRUE(cache.Execute(db, sql, 7).ok());  // hit: same variant, new floor
  EXPECT_EQ(cache.size(), 2u);

  auto metrics = obs::Registry::Global().TakeSnapshot();
  EXPECT_EQ(metrics.counter("db_plan_cache_hits_total"), 2u);
  EXPECT_EQ(metrics.counter("db_plan_cache_misses_total"), 2u);

  // A trim bumps the trim epoch: the cached plans are stale and re-prepared.
  Exec(db, "DELETE FROM updates WHERE time <= 5");
  ASSERT_TRUE(cache.Execute(db, sql).ok());
  metrics = obs::Registry::Global().TakeSnapshot();
  EXPECT_EQ(metrics.counter("db_plan_cache_misses_total"), 3u);

  // Schema changes invalidate too.
  Exec(db, "CREATE TABLE unrelated (time)");
  ASSERT_TRUE(cache.Execute(db, sql).ok());
  metrics = obs::Registry::Global().TakeSnapshot();
  EXPECT_EQ(metrics.counter("db_plan_cache_misses_total"), 4u);
}

TEST(PlanCache, FlooredExecutionAgainstSnapshotMatchesLive) {
  Database db = MakeUpdatesDb(40);
  PlanCache cache;
  Snapshot snap = db.CaptureSnapshot();
  Exec(db, "INSERT INTO updates VALUES (41, 'main', 'c41')");
  const std::string sql = "SELECT time FROM updates ORDER BY time";
  auto snapped = cache.Execute(db, sql, 35, &snap);
  ASSERT_TRUE(snapped.ok());
  ASSERT_EQ(snapped->rows.size(), 5u);  // 36..40: the post-snapshot row is invisible
  EXPECT_EQ(snapped->rows.back()[0].AsInt(), 40);
  auto live = cache.Execute(db, sql, 35);
  ASSERT_TRUE(live.ok());
  ASSERT_EQ(live->rows.size(), 6u);
  EXPECT_EQ(live->rows.back()[0].AsInt(), 41);
}

}  // namespace
}  // namespace seal::db
