// End-to-end integration: real TLS clients talk to services running behind
// LibSEAL (TLS terminated inside the simulated enclave, audit log + SQL
// invariants inside), attacks are injected at the service, and clients
// learn about violations through the in-band Libseal-Check mechanism.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "src/core/libseal.h"
#include "src/obs/obs.h"
#include "src/services/dropbox_service.h"
#include "src/services/git_service.h"
#include "src/services/http_server.h"
#include "src/services/https_client.h"
#include "src/services/owncloud_service.h"
#include "src/services/proxy.h"
#include "src/ssm/dropbox_ssm.h"
#include "src/ssm/git_ssm.h"
#include "src/ssm/owncloud_ssm.h"
#include "src/tls/x509.h"

namespace seal {
namespace {

struct Pki {
  Pki() {
    ca = tls::MakeSelfSignedCa("Integration CA",
                               crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
    server_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("srv"));
    server_cert = tls::IssueCertificate(ca, "libseal.service", server_key.public_key(), 2);
  }
  tls::CertifiedKey ca;
  crypto::EcdsaPrivateKey server_key;
  tls::Certificate server_cert;
};

Pki& GetPki() {
  static Pki pki;
  return pki;
}

core::LibSealOptions MakeLibSealOptions(size_t check_interval) {
  core::LibSealOptions options;
  options.enclave.inject_costs = false;
  options.use_async_calls = true;
  options.async.enclave_threads = 2;
  options.async.tasks_per_thread = 16;
  options.audit_log.counter_options.inject_latency = false;
  options.logger.check_interval = check_interval;
  options.tls.certificate = GetPki().server_cert;
  options.tls.private_key = GetPki().server_key;
  return options;
}

tls::TlsConfig ClientTls() {
  tls::TlsConfig config;
  config.trusted_roots = {GetPki().ca.cert};
  return config;
}

std::string CheckHeaderOrEmpty(const http::HttpResponse& rsp) {
  const std::string* h = rsp.GetHeader("Libseal-Check-Result");
  return h == nullptr ? "" : *h;
}

// --- Git behind Apache(-like) + LibSEAL ---

TEST(Integration, GitCleanAndAttackedRuns) {
  net::Network network;
  core::LibSealRuntime runtime(MakeLibSealOptions(0), std::make_unique<ssm::GitModule>());
  ASSERT_TRUE(runtime.Init().ok());
  services::LibSealTransport transport(&runtime);
  services::GitBackend backend;
  services::HttpServer server(&network, {.address = "git:443"}, &transport,
                              [&](const http::HttpRequest& r) { return backend.Handle(r); });
  ASSERT_TRUE(server.Start().ok());

  tls::TlsConfig client_tls = ClientTls();
  auto client = services::HttpsClient::Connect(&network, "git:443", client_tls);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // A few pushes and a clean audited fetch.
  for (int i = 1; i <= 5; ++i) {
    auto rsp = (*client)->RoundTrip(
        services::MakeGitPush("repo", {{"main", "c" + std::to_string(i)}}));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
    EXPECT_EQ(rsp->status, 200);
  }
  auto clean = (*client)->RoundTrip(services::MakeGitFetch("repo", /*libseal_check=*/true));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(CheckHeaderOrEmpty(*clean).rfind("ok", 0), 0u) << CheckHeaderOrEmpty(*clean);

  // Rollback attack: detected in-band.
  backend.set_attack(services::GitBackend::Attack::kRollback);
  auto dirty = (*client)->RoundTrip(services::MakeGitFetch("repo", /*libseal_check=*/true));
  ASSERT_TRUE(dirty.ok());
  EXPECT_NE(CheckHeaderOrEmpty(*dirty).find("git-soundness"), std::string::npos)
      << CheckHeaderOrEmpty(*dirty);

  (*client)->Close();
  server.Stop();
  runtime.Shutdown();
}

TEST(Integration, GitMultipleConcurrentClients) {
  net::Network network;
  core::LibSealRuntime runtime(MakeLibSealOptions(25), std::make_unique<ssm::GitModule>());
  ASSERT_TRUE(runtime.Init().ok());
  services::LibSealTransport transport(&runtime);
  services::GitBackend backend;
  services::HttpServer server(&network, {.address = "git:443"}, &transport,
                              [&](const http::HttpRequest& r) { return backend.Handle(r); });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 15;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      tls::TlsConfig client_tls = ClientTls();
      auto client = services::HttpsClient::Connect(&network, "git:443", client_tls);
      ASSERT_TRUE(client.ok());
      services::GitWorkload workload("repo-" + std::to_string(c), 3,
                                     static_cast<uint64_t>(c) + 1);
      for (int i = 0; i < kOpsPerClient; ++i) {
        auto rsp = (*client)->RoundTrip(workload.Next());
        ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
      }
      (*client)->Close();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  server.Stop();
  EXPECT_EQ(runtime.logger()->pairs_logged(), kClients * kOpsPerClient);
  // No violations on honest runs, even with interval checks + trimming.
  auto report = runtime.logger()->CheckInvariants();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->Summary();
  runtime.Shutdown();
}

TEST(Integration, GitPersistedLogSurvivesVerification) {
  std::string path = std::string(::testing::TempDir()) + "/integration_git.log";
  net::Network network;
  core::LibSealOptions options = MakeLibSealOptions(0);
  options.audit_log.mode = core::PersistenceMode::kDisk;
  options.audit_log.path = path;
  core::LibSealRuntime runtime(options, std::make_unique<ssm::GitModule>());
  ASSERT_TRUE(runtime.Init().ok());
  services::LibSealTransport transport(&runtime);
  services::GitBackend backend;
  services::HttpServer server(&network, {.address = "git:443"}, &transport,
                              [&](const http::HttpRequest& r) { return backend.Handle(r); });
  ASSERT_TRUE(server.Start().ok());

  tls::TlsConfig client_tls = ClientTls();
  auto client = services::HttpsClient::Connect(&network, "git:443", client_tls);
  ASSERT_TRUE(client.ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(
        (*client)
            ->RoundTrip(services::MakeGitPush("repo", {{"main", "c" + std::to_string(i)}}))
            .ok());
  }
  (*client)->Close();
  server.Stop();

  // An auditor verifies the persisted log with the enclave's public key.
  auto verified = core::AuditLog::VerifyLogFile(path, runtime.log_public_key(),
                                                runtime.logger()->log().counter());
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(*verified, 3u);

  // A provider edit is detected.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 30, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 30, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  EXPECT_FALSE(core::AuditLog::VerifyLogFile(path, runtime.log_public_key(),
                                             runtime.logger()->log().counter())
                   .ok());
  runtime.Shutdown();
}

// --- ownCloud behind LibSEAL ---

TEST(Integration, OwnCloudLostEditDetected) {
  net::Network network;
  core::LibSealRuntime runtime(MakeLibSealOptions(0), std::make_unique<ssm::OwnCloudModule>());
  ASSERT_TRUE(runtime.Init().ok());
  services::LibSealTransport transport(&runtime);
  services::OwnCloudService owncloud;
  services::HttpServer server(&network, {.address = "owncloud:443"}, &transport,
                              [&](const http::HttpRequest& r) { return owncloud.Handle(r); });
  ASSERT_TRUE(server.Start().ok());

  tls::TlsConfig client_tls = ClientTls();
  auto client = services::HttpsClient::Connect(&network, "owncloud:443", client_tls);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->RoundTrip(services::MakeOwnCloudSync("doc", 0, "alice", 1, "a")).ok());
  ASSERT_TRUE((*client)->RoundTrip(services::MakeOwnCloudSync("doc", 0, "alice", 2, "b")).ok());
  auto clean = (*client)->RoundTrip(services::MakeOwnCloudJoin("doc", "bob", true));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(CheckHeaderOrEmpty(*clean).rfind("ok", 0), 0u) << CheckHeaderOrEmpty(*clean);

  owncloud.set_attack(services::OwnCloudService::Attack::kDropUpdate);
  auto dirty = (*client)->RoundTrip(services::MakeOwnCloudJoin("doc", "carol", true));
  ASSERT_TRUE(dirty.ok());
  EXPECT_NE(CheckHeaderOrEmpty(*dirty).find("owncloud-update-prefix"), std::string::npos)
      << CheckHeaderOrEmpty(*dirty);
  (*client)->Close();
  server.Stop();
  runtime.Shutdown();
}

// --- Dropbox behind Squid(-like) proxy + LibSEAL ---

TEST(Integration, DropboxThroughAuditingProxy) {
  net::Network network;
  // The origin ("Dropbox"): plain TLS, unreachable for auditing.
  tls::TlsConfig origin_tls;
  origin_tls.certificate = GetPki().server_cert;
  origin_tls.private_key = GetPki().server_key;
  services::PlainTransport origin_transport(origin_tls);
  services::DropboxService dropbox;
  services::HttpServer origin(&network, {.address = "dropbox:443"}, &origin_transport,
                              [&](const http::HttpRequest& r) { return dropbox.Handle(r); });
  ASSERT_TRUE(origin.Start().ok());

  // The local Squid proxy linked against LibSEAL with the Dropbox SSM.
  core::LibSealRuntime runtime(MakeLibSealOptions(0), std::make_unique<ssm::DropboxModule>());
  ASSERT_TRUE(runtime.Init().ok());
  services::LibSealTransport proxy_transport(&runtime);
  services::ProxyServer::Options proxy_options;
  proxy_options.listen_address = "proxy:3128";
  proxy_options.upstream_address = "dropbox:443";
  // Clients' certificate verification towards the origin is disabled in
  // the paper's deployment (§6.4); here the proxy's upstream leg skips it.
  proxy_options.upstream_tls.verify_peer = false;
  services::ProxyServer proxy(&network, proxy_options, &proxy_transport);
  ASSERT_TRUE(proxy.Start().ok());

  tls::TlsConfig client_tls = ClientTls();
  auto client = services::HttpsClient::Connect(&network, "proxy:3128", client_tls);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      (*client)
          ->RoundTrip(services::MakeCommitBatch("acct", "h", {{"a.txt", "bl-a", 100}}))
          .ok());
  auto clean = (*client)->RoundTrip(services::MakeListRequest("acct", /*libseal_check=*/true));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(CheckHeaderOrEmpty(*clean).rfind("ok", 0), 0u) << CheckHeaderOrEmpty(*clean);

  dropbox.set_attack(services::DropboxService::Attack::kCorruptBlocklist);
  auto dirty = (*client)->RoundTrip(services::MakeListRequest("acct", /*libseal_check=*/true));
  ASSERT_TRUE(dirty.ok());
  EXPECT_NE(CheckHeaderOrEmpty(*dirty).find("dropbox-blocklist-soundness"), std::string::npos)
      << CheckHeaderOrEmpty(*dirty);

  (*client)->Close();
  proxy.Stop();
  origin.Stop();
  runtime.Shutdown();
}

// --- attestation-driven trust bootstrap (§6.3 "Bypassing logging") ---

TEST(Integration, ClientVerifiesGenuineLibSealBeforeTrusting) {
  core::LibSealRuntime runtime(MakeLibSealOptions(0), std::make_unique<ssm::GitModule>());
  ASSERT_TRUE(runtime.Init().ok());
  sgx::QuotingEnclave qe;
  sgx::AttestationService ias;
  ias.TrustPlatform(qe.platform_key());

  auto quote = runtime.AttestationQuote(qe);
  ASSERT_TRUE(quote.ok());
  // The client checks (1) the quote is from a real enclave platform, and
  // (2) the TLS certificate it connects to hashes to the quote's report
  // data. A provider terminating TLS with a traditional library cannot
  // produce such a quote.
  ASSERT_TRUE(ias.VerifyQuote(*quote).ok());
  crypto::Sha256Digest cert_hash = crypto::Sha256::Hash(GetPki().server_cert.Encode());
  EXPECT_EQ(ToHex(quote->report_data), ToHex(BytesView(cert_hash.data(), cert_hash.size())));

  // A forged quote for a different certificate fails the binding.
  tls::CertifiedKey rogue =
      tls::MakeSelfSignedCa("rogue", crypto::EcdsaPrivateKey::FromSeed(ToBytes("rogue")));
  crypto::Sha256Digest rogue_hash = crypto::Sha256::Hash(rogue.cert.Encode());
  EXPECT_NE(ToHex(quote->report_data), ToHex(BytesView(rogue_hash.data(), rogue_hash.size())));
  runtime.Shutdown();
}

TEST(Integration, CleanRunReportsMetricsAndNoViolations) {
  // The observability layer must agree with the functional result: a clean
  // end-to-end run moves the transition and logger counters but contributes
  // zero violations. Other tests in this binary run attacked scenarios, so
  // assert on deltas around this run, not on absolute counter values.
  obs::Snapshot before = obs::Registry::Global().TakeSnapshot();

  net::Network network;
  core::LibSealRuntime runtime(MakeLibSealOptions(0), std::make_unique<ssm::GitModule>());
  ASSERT_TRUE(runtime.Init().ok());
  services::LibSealTransport transport(&runtime);
  services::GitBackend backend;
  services::HttpServer server(&network, {.address = "git-obs:443"}, &transport,
                              [&](const http::HttpRequest& r) { return backend.Handle(r); });
  ASSERT_TRUE(server.Start().ok());

  tls::TlsConfig client_tls = ClientTls();
  auto client = services::HttpsClient::Connect(&network, "git-obs:443", client_tls);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 1; i <= 3; ++i) {
    auto rsp = (*client)->RoundTrip(
        services::MakeGitPush("repo", {{"main", "c" + std::to_string(i)}}));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
    EXPECT_EQ(rsp->status, 200);
  }
  auto clean = (*client)->RoundTrip(services::MakeGitFetch("repo", /*libseal_check=*/true));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(CheckHeaderOrEmpty(*clean).rfind("ok", 0), 0u) << CheckHeaderOrEmpty(*clean);
  (*client)->Close();
  server.Stop();
  runtime.Shutdown();

  obs::Snapshot after = obs::Registry::Global().TakeSnapshot();
  EXPECT_EQ(after.counter("logger_violations_found_total") -
                before.counter("logger_violations_found_total"),
            0u);
  EXPECT_GT(after.counter("sgx_ecalls_total"), before.counter("sgx_ecalls_total"));
  EXPECT_GT(after.counter("sgx_transitions_total"), before.counter("sgx_transitions_total"));
  EXPECT_GT(after.counter("asyncall_ecalls_total"), before.counter("asyncall_ecalls_total"));
  EXPECT_GT(after.counter("tls_handshakes_completed_total"),
            before.counter("tls_handshakes_completed_total"));
  EXPECT_GT(after.CounterFamilyTotal("logger_checks_total") -
                before.CounterFamilyTotal("logger_checks_total"),
            0u);
}

}  // namespace
}  // namespace seal
