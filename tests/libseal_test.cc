#include <gtest/gtest.h>

#include <thread>

#include "src/core/libseal.h"
#include "src/services/git_service.h"
#include "src/services/https_client.h"
#include "src/ssm/git_ssm.h"
#include "src/tls/x509.h"

namespace seal::core {
namespace {

struct Pki {
  Pki() {
    ca = tls::MakeSelfSignedCa("LibSEAL Test CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
    server_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("server"));
    server_cert = tls::IssueCertificate(ca, "service.example", server_key.public_key(), 2);
  }
  tls::CertifiedKey ca;
  crypto::EcdsaPrivateKey server_key;
  tls::Certificate server_cert;
};

Pki& GetPki() {
  static Pki pki;
  return pki;
}

LibSealOptions BaseOptions(bool async) {
  LibSealOptions options;
  options.enclave.inject_costs = false;
  options.use_async_calls = async;
  options.async.enclave_threads = 2;
  options.async.tasks_per_thread = 8;
  options.audit_log.counter_options.inject_latency = false;
  options.logger.check_interval = 0;
  options.tls.certificate = GetPki().server_cert;
  options.tls.private_key = GetPki().server_key;
  return options;
}

tls::TlsConfig ClientConfig() {
  tls::TlsConfig config;
  config.trusted_roots = {GetPki().ca.cert};
  return config;
}

// --- TryExtractHttpMessage ---

TEST(HttpExtract, CompleteMessage) {
  std::string buffer = "GET / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcLEFTOVER";
  auto msg = TryExtractHttpMessage(buffer);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->substr(msg->size() - 3), "abc");
  EXPECT_EQ(buffer, "LEFTOVER");
}

TEST(HttpExtract, IncompleteHeaders) {
  std::string buffer = "GET / HTTP/1.1\r\nContent-Le";
  EXPECT_FALSE(TryExtractHttpMessage(buffer).has_value());
  EXPECT_EQ(buffer.size(), 26u);  // untouched
}

TEST(HttpExtract, IncompleteBody) {
  std::string buffer = "GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
  EXPECT_FALSE(TryExtractHttpMessage(buffer).has_value());
}

TEST(HttpExtract, NoBodyMessage) {
  std::string buffer = "GET / HTTP/1.1\r\nHost: h\r\n\r\n";
  auto msg = TryExtractHttpMessage(buffer);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(buffer.empty());
}

TEST(HttpExtract, TwoPipelinedMessages) {
  std::string buffer =
      "POST /a HTTP/1.1\r\nContent-Length: 1\r\n\r\nx"
      "POST /b HTTP/1.1\r\nContent-Length: 1\r\n\r\ny";
  auto first = TryExtractHttpMessage(buffer);
  auto second = TryExtractHttpMessage(buffer);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->find("/a"), std::string::npos);
  EXPECT_NE(second->find("/b"), std::string::npos);
  EXPECT_TRUE(buffer.empty());
}

TEST(HttpExtract, ContentLengthToleratesSurroundingWhitespace) {
  std::string buffer = "GET / HTTP/1.1\r\nContent-Length: \t 3 \r\n\r\nabc";
  auto msg = TryExtractHttpMessage(buffer);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(buffer.empty());
}

TEST(HttpExtract, ContentLengthRejectsTrailingGarbage) {
  // strtoul would have read "3" and ignored the rest, desyncing the
  // framing from what a real HTTP parser sees.
  std::string buffer = "GET / HTTP/1.1\r\nContent-Length: 3x\r\n\r\nabc";
  EXPECT_FALSE(TryExtractHttpMessage(buffer).has_value());
}

TEST(HttpExtract, ContentLengthRejectsNonNumericAndNegative) {
  std::string buffer = "GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n";
  EXPECT_FALSE(TryExtractHttpMessage(buffer).has_value());
  buffer = "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n";
  EXPECT_FALSE(TryExtractHttpMessage(buffer).has_value());
  buffer = "GET / HTTP/1.1\r\nContent-Length:\r\n\r\n";
  EXPECT_FALSE(TryExtractHttpMessage(buffer).has_value());
}

TEST(HttpExtract, ContentLengthRejectsOverflowAndOversize) {
  // 2^64 + a bit: strtoul silently wrapped this to a small total.
  std::string buffer = "GET / HTTP/1.1\r\nContent-Length: 18446744073709551620\r\n\r\nabc";
  EXPECT_FALSE(TryExtractHttpMessage(buffer).has_value());
  // Within range but above the audit buffer cap: can never complete.
  buffer = "GET / HTTP/1.1\r\nContent-Length: " + std::to_string(kAuditBufferCap + 1) +
           "\r\n\r\n";
  EXPECT_FALSE(TryExtractHttpMessage(buffer).has_value());
  EXPECT_EQ(ContentLengthFromHeaders("Content-Length: " + std::to_string(kAuditBufferCap)),
            std::optional<size_t>(kAuditBufferCap));
}

TEST(HttpExtract, LastContentLengthWins) {
  std::string buffer = "GET / HTTP/1.1\r\nContent-Length: 9\r\nContent-Length: 2\r\n\r\nab";
  auto msg = TryExtractHttpMessage(buffer);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(buffer.empty());
}

// --- HttpMessageBuffer (incremental framer) ---

TEST(HttpMessageBuffer, ExtractsAcrossManySmallChunks) {
  std::string wire =
      "POST /a HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello"
      "POST /b HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
  HttpMessageBuffer buffer;
  std::vector<std::string> messages;
  // Byte-at-a-time delivery: the scan offset keeps this O(n) overall.
  for (char c : wire) {
    buffer.Append(&c, 1);
    while (auto msg = buffer.TryExtract()) {
      messages.push_back(std::move(*msg));
    }
  }
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_NE(messages[0].find("/a"), std::string::npos);
  EXPECT_EQ(messages[0].substr(messages[0].size() - 5), "hello");
  EXPECT_NE(messages[1].find("/b"), std::string::npos);
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(HttpMessageBuffer, TerminatorStraddlingChunkBoundaryIsFound) {
  HttpMessageBuffer buffer;
  std::string part1 = "GET / HTTP/1.1\r\nHost: h\r";
  std::string part2 = "\n\r\nleftover";
  buffer.Append(part1.data(), part1.size());
  EXPECT_FALSE(buffer.TryExtract().has_value());
  buffer.Append(part2.data(), part2.size());
  auto msg = buffer.TryExtract();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(buffer.view(), "leftover");
}

TEST(HttpMessageBuffer, InvalidContentLengthPoisonsUntilCleared) {
  HttpMessageBuffer buffer;
  std::string wire = "GET / HTTP/1.1\r\nContent-Length: 1e9\r\n\r\nbody";
  buffer.Append(wire.data(), wire.size());
  EXPECT_FALSE(buffer.TryExtract().has_value());
  EXPECT_TRUE(buffer.poisoned());
  // Poison sticks (no re-framing attempts) until the caller clears.
  EXPECT_FALSE(buffer.TryExtract().has_value());
  buffer.Clear();
  EXPECT_FALSE(buffer.poisoned());
  EXPECT_EQ(buffer.size(), 0u);
  std::string good = "GET / HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
  buffer.Append(good.data(), good.size());
  EXPECT_TRUE(buffer.TryExtract().has_value());
}

// --- runtime round trips ---

class LibSealParamTest : public ::testing::TestWithParam<bool> {};

TEST_P(LibSealParamTest, HandshakeAndEcho) {
  LibSealRuntime runtime(BaseOptions(GetParam()), nullptr);
  ASSERT_TRUE(runtime.Init().ok());
  auto [client_stream, server_stream] = net::CreateStreamPair();

  std::thread server_thread([&, &server_stream = server_stream] {
    LibSealSsl* ssl = runtime.SslNew(server_stream.get(), tls::Role::kServer);
    ASSERT_NE(ssl, nullptr);
    EXPECT_EQ(ssl->handshake_done, 0);
    ASSERT_EQ(runtime.SslHandshake(ssl), 1);
    EXPECT_EQ(ssl->handshake_done, 1);  // shadow field synchronised
    uint8_t buf[64];
    int n = runtime.SslRead(ssl, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    EXPECT_EQ(runtime.SslWrite(ssl, buf, n), n);
    EXPECT_EQ(ssl->bytes_read, static_cast<uint64_t>(n));
    EXPECT_EQ(ssl->bytes_written, static_cast<uint64_t>(n));
    runtime.SslShutdown(ssl);
    runtime.SslFree(ssl);
  });

  tls::StreamBio bio(client_stream.get());
  tls::TlsConfig client_config = ClientConfig();
  tls::TlsConnection client(&bio, &client_config, tls::Role::kClient);
  ASSERT_TRUE(client.Handshake().ok());
  ASSERT_TRUE(client.Write(std::string_view("ping!")).ok());
  uint8_t buf[64];
  auto n = client.Read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), *n), "ping!");
  server_thread.join();
  runtime.Shutdown();
}

TEST_P(LibSealParamTest, ClientSeesEnclaveCertificate) {
  LibSealRuntime runtime(BaseOptions(GetParam()), nullptr);
  ASSERT_TRUE(runtime.Init().ok());
  auto [client_stream, server_stream] = net::CreateStreamPair();
  std::thread server_thread([&, &server_stream = server_stream] {
    LibSealSsl* ssl = runtime.SslNew(server_stream.get(), tls::Role::kServer);
    ASSERT_EQ(runtime.SslHandshake(ssl), 1);
    runtime.SslFree(ssl);
  });
  tls::StreamBio bio(client_stream.get());
  tls::TlsConfig client_config = ClientConfig();
  tls::TlsConnection client(&bio, &client_config, tls::Role::kClient);
  ASSERT_TRUE(client.Handshake().ok());
  ASSERT_TRUE(client.peer_certificate().has_value());
  EXPECT_EQ(client.peer_certificate()->subject, "service.example");
  server_thread.join();
}

INSTANTIATE_TEST_SUITE_P(SyncAndAsync, LibSealParamTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "AsyncCalls" : "SyncCalls";
                         });

TEST(LibSeal, ExDataStoredOutside) {
  LibSealRuntime runtime(BaseOptions(false), nullptr);
  ASSERT_TRUE(runtime.Init().ok());
  auto [client_stream, server_stream] = net::CreateStreamPair();
  LibSealSsl* ssl = runtime.SslNew(server_stream.get(), tls::Role::kServer);
  ASSERT_NE(ssl, nullptr);
  int marker = 7;
  EXPECT_EQ(runtime.SslSetExData(ssl, 0, &marker), 1);
  EXPECT_EQ(runtime.SslGetExData(ssl, 0), &marker);
  EXPECT_EQ(runtime.SslGetExData(ssl, 1), nullptr);
  EXPECT_EQ(runtime.SslSetExData(ssl, 99, &marker), 0);  // out of range
  // The data lives in the outside shadow structure, reachable without a
  // transition.
  EXPECT_EQ(ssl->ex_data[0], &marker);
  runtime.SslFree(ssl);
}

TEST(LibSeal, InfoCallbackInvokedOutsideViaTrampoline) {
  static std::vector<int> events;
  events.clear();
  LibSealOptions options = BaseOptions(false);
  LibSealRuntime runtime(options, nullptr);
  runtime.SetInfoCallback([](const LibSealSsl* ssl, int event, int bytes) {
    EXPECT_NE(ssl, nullptr);
    events.push_back(event);
  });
  ASSERT_TRUE(runtime.Init().ok());
  auto [client_stream, server_stream] = net::CreateStreamPair();
  std::thread server_thread([&, &server_stream = server_stream] {
    LibSealSsl* ssl = runtime.SslNew(server_stream.get(), tls::Role::kServer);
    ASSERT_EQ(runtime.SslHandshake(ssl), 1);
    runtime.SslFree(ssl);
  });
  tls::StreamBio bio(client_stream.get());
  tls::TlsConfig client_config = ClientConfig();
  tls::TlsConnection client(&bio, &client_config, tls::Role::kClient);
  ASSERT_TRUE(client.Handshake().ok());
  server_thread.join();
  EXPECT_GE(events.size(), 2u);  // at least handshake start + done
}

TEST(LibSeal, SyncModePaysTransitionsPerCall) {
  LibSealOptions options = BaseOptions(false);
  LibSealRuntime runtime(options, nullptr);
  ASSERT_TRUE(runtime.Init().ok());
  auto [client_stream, server_stream] = net::CreateStreamPair();
  std::thread server_thread([&, &server_stream = server_stream] {
    LibSealSsl* ssl = runtime.SslNew(server_stream.get(), tls::Role::kServer);
    ASSERT_EQ(runtime.SslHandshake(ssl), 1);
    uint8_t buf[16];
    int n = runtime.SslRead(ssl, buf, sizeof(buf));
    runtime.SslWrite(ssl, buf, n);
    runtime.SslFree(ssl);
  });
  tls::StreamBio bio(client_stream.get());
  tls::TlsConfig client_config = ClientConfig();
  tls::TlsConnection client(&bio, &client_config, tls::Role::kClient);
  ASSERT_TRUE(client.Handshake().ok());
  ASSERT_TRUE(client.Write(std::string_view("hi")).ok());
  uint8_t buf[16];
  ASSERT_TRUE(client.Read(buf, sizeof(buf)).ok());
  server_thread.join();
  // Synchronous mode crosses the gate for every SSL_* call and BIO access.
  auto stats = runtime.enclave().stats();
  EXPECT_GE(stats.ecalls, 4u);  // new, handshake, read, write at minimum
  EXPECT_GE(stats.ocalls, 4u);  // BIO traffic during the handshake
}

TEST(LibSeal, AsyncModeAvoidsPerCallTransitions) {
  LibSealOptions options = BaseOptions(true);
  LibSealRuntime runtime(options, nullptr);
  ASSERT_TRUE(runtime.Init().ok());
  auto [client_stream, server_stream] = net::CreateStreamPair();
  std::thread server_thread([&, &server_stream = server_stream] {
    LibSealSsl* ssl = runtime.SslNew(server_stream.get(), tls::Role::kServer);
    ASSERT_EQ(runtime.SslHandshake(ssl), 1);
    uint8_t buf[16];
    int n = runtime.SslRead(ssl, buf, sizeof(buf));
    runtime.SslWrite(ssl, buf, n);
    runtime.SslFree(ssl);
  });
  tls::StreamBio bio(client_stream.get());
  tls::TlsConfig client_config = ClientConfig();
  tls::TlsConnection client(&bio, &client_config, tls::Role::kClient);
  ASSERT_TRUE(client.Handshake().ok());
  ASSERT_TRUE(client.Write(std::string_view("hi")).ok());
  uint8_t buf[16];
  ASSERT_TRUE(client.Read(buf, sizeof(buf)).ok());
  server_thread.join();
  // Only the worker threads entered the enclave; no per-call transitions.
  auto stats = runtime.enclave().stats();
  EXPECT_EQ(stats.ecalls, static_cast<uint64_t>(options.async.enclave_threads));
  EXPECT_EQ(stats.ocalls, 0u);
  runtime.Shutdown();
}

TEST(LibSeal, AttestationQuoteBindsCertificate) {
  LibSealRuntime runtime(BaseOptions(false), nullptr);
  ASSERT_TRUE(runtime.Init().ok());
  sgx::QuotingEnclave qe;
  auto quote = runtime.AttestationQuote(qe);
  ASSERT_TRUE(quote.ok());
  sgx::AttestationService ias;
  ias.TrustPlatform(qe.platform_key());
  ASSERT_TRUE(ias.VerifyQuote(*quote).ok());
  // The quote's report data is the hash of the TLS certificate the client
  // sees, so a client can check it is talking to a genuine LibSEAL.
  crypto::Sha256Digest expected = crypto::Sha256::Hash(GetPki().server_cert.Encode());
  EXPECT_EQ(ToHex(quote->report_data), ToHex(BytesView(expected.data(), expected.size())));
}

// --- audited end-to-end flow with the Git SSM ---

TEST(LibSealAudit, LogsPairsAndAnswersCheckHeader) {
  LibSealOptions options = BaseOptions(false);
  options.logger.check_interval = 0;  // only client-triggered checks
  LibSealRuntime runtime(options, std::make_unique<ssm::GitModule>());
  ASSERT_TRUE(runtime.Init().ok());
  services::GitBackend backend;

  auto [client_stream, server_stream] = net::CreateStreamPair();
  std::thread server_thread([&, &server_stream = server_stream] {
    LibSealSsl* ssl = runtime.SslNew(server_stream.get(), tls::Role::kServer);
    ASSERT_EQ(runtime.SslHandshake(ssl), 1);
    // Minimal HTTP server loop over the LibSEAL API.
    for (;;) {
      auto raw = http::ReadHttpMessage([&](uint8_t* buf, size_t max) {
        int n = runtime.SslRead(ssl, buf, static_cast<int>(max));
        return n <= 0 ? size_t{0} : static_cast<size_t>(n);
      });
      if (!raw.ok()) {
        break;
      }
      auto request = http::ParseRequest(*raw);
      ASSERT_TRUE(request.ok());
      std::string wire = backend.Handle(*request).Serialize();
      ASSERT_GT(runtime.SslWrite(ssl, reinterpret_cast<const uint8_t*>(wire.data()),
                                 static_cast<int>(wire.size())),
                0);
    }
    runtime.SslFree(ssl);
  });

  tls::StreamBio bio(client_stream.get());
  tls::TlsConfig client_config = ClientConfig();
  tls::TlsConnection client(&bio, &client_config, tls::Role::kClient);
  ASSERT_TRUE(client.Handshake().ok());

  auto round_trip = [&](const http::HttpRequest& req) -> http::HttpResponse {
    std::string wire = req.Serialize();
    EXPECT_TRUE(client.Write(wire).ok());
    auto raw = http::ReadHttpMessage([&](uint8_t* buf, size_t max) {
      auto n = client.Read(buf, max);
      return n.ok() ? *n : size_t{0};
    });
    EXPECT_TRUE(raw.ok());
    auto rsp = http::ParseResponse(*raw);
    EXPECT_TRUE(rsp.ok());
    return *rsp;
  };

  // Clean history.
  round_trip(services::MakeGitPush("repo", {{"main", "c1"}}));
  round_trip(services::MakeGitPush("repo", {{"main", "c2"}}));
  http::HttpResponse clean = round_trip(services::MakeGitFetch("repo", /*libseal_check=*/true));
  const std::string* clean_result = clean.GetHeader("Libseal-Check-Result");
  ASSERT_NE(clean_result, nullptr);
  EXPECT_EQ(clean_result->rfind("ok", 0), 0u) << *clean_result;

  // Rollback attack: the header must now announce a violation.
  backend.set_attack(services::GitBackend::Attack::kRollback);
  http::HttpResponse dirty = round_trip(services::MakeGitFetch("repo", /*libseal_check=*/true));
  const std::string* dirty_result = dirty.GetHeader("Libseal-Check-Result");
  ASSERT_NE(dirty_result, nullptr);
  EXPECT_NE(dirty_result->find("VIOLATION"), std::string::npos) << *dirty_result;
  EXPECT_NE(dirty_result->find("git-soundness"), std::string::npos);

  client.Close();
  client_stream->Close();
  server_thread.join();

  // The audit log recorded all four pairs' tuples.
  EXPECT_EQ(runtime.logger()->pairs_logged(), 4);
  EXPECT_GT(runtime.logger()->log().entry_count(), 0u);
}

}  // namespace
}  // namespace seal::core
