#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/obs/obs.h"

namespace seal::obs {
namespace {

TEST(Counter, SingleThreadSums) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(Counter, ShardedIncrementsAreNotLostUnderThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Counter, DisabledIncrementsAreDropped) {
  Counter c;
  SetEnabled(false);
  c.Add(100);
  SetEnabled(true);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(Gauge, SetAddAndMax) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.SetMax(5);  // below: no effect
  EXPECT_EQ(g.Value(), 7);
  g.SetMax(99);
  EXPECT_EQ(g.Value(), 99);
}

TEST(Histogram, BucketIndexIsFloorLog2Plus1) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);
}

TEST(Histogram, BucketBoundsPartitionTheRange) {
  // Bucket i admits exactly (BucketUpperBound(i-1), BucketUpperBound(i)].
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{7}, uint64_t{4096}, UINT64_MAX}) {
    size_t b = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(b));
    if (b > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(b - 1));
    }
  }
}

TEST(Histogram, ObserveCountsSumsAndBuckets) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1000);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 1006u);
  std::array<uint64_t, kHistogramBuckets> buckets;
  h.CollectBuckets(&buckets);
  EXPECT_EQ(buckets[0], 1u);  // 0
  EXPECT_EQ(buckets[1], 1u);  // 1
  EXPECT_EQ(buckets[2], 2u);  // 2, 3
  EXPECT_EQ(buckets[10], 1u);  // 1000
}

TEST(Histogram, ConcurrentObservationsAreNotLost) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, ApproxPercentileReturnsBucketUpperBound) {
  HistogramSnapshot snap;
  // 90 observations of value 1, 10 of value ~1000.
  snap.buckets[1] = 90;
  snap.buckets[10] = 10;
  snap.count = 100;
  EXPECT_EQ(snap.ApproxPercentile(0.5), 1u);
  EXPECT_EQ(snap.ApproxPercentile(0.99), 1023u);
  HistogramSnapshot empty;
  EXPECT_EQ(empty.ApproxPercentile(0.5), 0u);
}

TEST(Registry, InternsByNameAndSnapshots) {
  Registry& r = Registry::Global();
  Counter& a = r.GetCounter("obs_test_interned_total");
  Counter& b = r.GetCounter("obs_test_interned_total");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Add(7);
  r.GetGauge("obs_test_gauge").Set(-5);
  r.GetHistogram("obs_test_hist").Observe(12);
  Snapshot snap = r.TakeSnapshot();
  EXPECT_EQ(snap.counter("obs_test_interned_total"), 7u);
  EXPECT_EQ(snap.gauge("obs_test_gauge"), -5);
  ASSERT_NE(snap.histogram("obs_test_hist"), nullptr);
  EXPECT_GE(snap.histogram("obs_test_hist")->count, 1u);
  EXPECT_EQ(snap.counter("obs_test_no_such_metric"), 0u);
}

TEST(Registry, SnapshotIsMonotoneUnderConcurrentWriters) {
  Registry& r = Registry::Global();
  Counter& c = r.GetCounter("obs_test_monotone_total");
  c.Reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      c.Increment();
    }
  });
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    uint64_t now = r.TakeSnapshot().counter("obs_test_monotone_total");
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true);
  writer.join();
  // A final snapshot sees every increment (writer has joined).
  EXPECT_EQ(r.TakeSnapshot().counter("obs_test_monotone_total"), c.Value());
}

TEST(Registry, CounterFamilyTotalSumsLabelledVariants) {
  Registry& r = Registry::Global();
  r.GetCounter("obs_test_family_total").Reset();
  r.GetCounter("obs_test_family_total{kind=\"a\"}").Reset();
  r.GetCounter("obs_test_family_total{kind=\"b\"}").Reset();
  r.GetCounter("obs_test_family_total_other").Reset();  // different family
  r.GetCounter("obs_test_family_total").Add(1);
  r.GetCounter("obs_test_family_total{kind=\"a\"}").Add(2);
  r.GetCounter("obs_test_family_total{kind=\"b\"}").Add(4);
  r.GetCounter("obs_test_family_total_other").Add(100);
  Snapshot snap = r.TakeSnapshot();
  EXPECT_EQ(snap.CounterFamilyTotal("obs_test_family_total"), 7u);
}

TEST(Registry, PrometheusTextExport) {
  Registry& r = Registry::Global();
  r.GetCounter("obs_test_export_total{kind=\"x\"}").Reset();
  r.GetCounter("obs_test_export_total{kind=\"x\"}").Add(3);
  r.GetHistogram("obs_test_export_nanos").Reset();
  r.GetHistogram("obs_test_export_nanos").Observe(5);
  std::string text = r.ExportText();
  EXPECT_NE(text.find("# TYPE obs_test_export_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_export_total{kind=\"x\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_export_nanos histogram"), std::string::npos);
  EXPECT_NE(text.find("obs_test_export_nanos_bucket{le=\"7\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_export_nanos_sum 5"), std::string::npos);
  EXPECT_NE(text.find("obs_test_export_nanos_count 1"), std::string::npos);
}

TEST(Registry, ResetZeroesEverythingButKeepsReferences) {
  Registry& r = Registry::Global();
  Counter& c = r.GetCounter("obs_test_reset_total");
  c.Add(9);
  r.Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Add(2);  // the cached reference still works
  EXPECT_EQ(r.TakeSnapshot().counter("obs_test_reset_total"), 2u);
}

}  // namespace
}  // namespace seal::obs
