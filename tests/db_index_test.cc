// Tests for the seadb time-column index, the hash-join path and the
// incremental invariant checking built on top of them: index maintenance
// across INSERT/DELETE/UPDATE/Trim, byte-identical query results with the
// optimisations on vs off (on all four SSM invariant suites), and the
// per-invariant watermark lifecycle.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/logger.h"
#include "src/db/database.h"
#include "src/services/dropbox_service.h"
#include "src/services/git_service.h"
#include "src/services/messaging_service.h"
#include "src/services/owncloud_service.h"
#include "src/ssm/dropbox_ssm.h"
#include "src/ssm/git_ssm.h"
#include "src/ssm/messaging_ssm.h"
#include "src/ssm/owncloud_ssm.h"

namespace seal {
namespace {

using db::Database;
using db::QueryResult;

QueryResult Exec(Database& db, const std::string& sql) {
  auto r = db.Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  return r.ok() ? *r : QueryResult{};
}

// Canonical textual form of a result: column list then every row with every
// value serialised. Two results are equivalent iff their fingerprints match.
std::string Fingerprint(const QueryResult& r) {
  std::string s;
  for (const std::string& c : r.columns) {
    s += c;
    s += '|';
  }
  s += '\n';
  for (const db::Row& row : r.rows) {
    for (const db::Value& v : row) {
      s += v.Serialize();
      s += '|';
    }
    s += '\n';
  }
  return s;
}

// --- Index maintenance -----------------------------------------------------

TEST(TimeIndex, MaintainedAcrossInsertDeleteUpdate) {
  Database db;
  Exec(db, "CREATE TABLE t(time, x)");
  Exec(db, "INSERT INTO t VALUES (5, 'e'), (1, 'a'), (3, 'c')");
  const auto* index = db.TimeIndexForTesting("t");
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(index->size(), 3u);
  EXPECT_EQ((*index)[0].first, 1);
  EXPECT_EQ((*index)[1].first, 3);
  EXPECT_EQ((*index)[2].first, 5);
  // Positions point at the right rows.
  const auto* rows = db.TableRows("t");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ((*rows)[(*index)[0].second][1].AsText(), "a");
  EXPECT_EQ((*rows)[(*index)[2].second][1].AsText(), "e");

  Exec(db, "DELETE FROM t WHERE time = 3");
  index = db.TimeIndexForTesting("t");
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(index->size(), 2u);
  EXPECT_EQ((*index)[0].first, 1);
  EXPECT_EQ((*index)[1].first, 5);

  Exec(db, "UPDATE t SET time = 9 WHERE x = 'a'");
  index = db.TimeIndexForTesting("t");
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(index->size(), 2u);
  EXPECT_EQ((*index)[0].first, 5);
  EXPECT_EQ((*index)[1].first, 9);
}

TEST(TimeIndex, DuplicateTimesKeepRowOrder) {
  Database db;
  Exec(db, "CREATE TABLE t(time, x)");
  Exec(db, "INSERT INTO t VALUES (2, 'a'), (2, 'b'), (1, 'c'), (2, 'd')");
  const auto* index = db.TimeIndexForTesting("t");
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(index->size(), 4u);
  EXPECT_EQ((*index)[0].first, 1);
  // Equal keys stay in insertion (row-position) order.
  EXPECT_LT((*index)[1].second, (*index)[2].second);
  EXPECT_LT((*index)[2].second, (*index)[3].second);
}

TEST(TimeIndex, InvalidatedByNonIntegerTime) {
  Database db;
  Exec(db, "CREATE TABLE t(time, x)");
  Exec(db, "INSERT INTO t VALUES (1, 'a')");
  ASSERT_NE(db.TimeIndexForTesting("t"), nullptr);
  Exec(db, "INSERT INTO t VALUES ('late', 'b')");
  EXPECT_EQ(db.TimeIndexForTesting("t"), nullptr);

  Database db2;
  Exec(db2, "CREATE TABLE t(time)");
  Exec(db2, "INSERT INTO t VALUES (NULL)");
  EXPECT_EQ(db2.TimeIndexForTesting("t"), nullptr);

  // No time column at all: never indexed.
  Database db3;
  Exec(db3, "CREATE TABLE u(a, b)");
  Exec(db3, "INSERT INTO u VALUES (1, 2)");
  EXPECT_EQ(db3.TimeIndexForTesting("u"), nullptr);
}

TEST(TimeIndex, SurvivesSerialisationRoundTrip) {
  Database db;
  Exec(db, "CREATE TABLE t(time, x)");
  Exec(db, "INSERT INTO t VALUES (4, 'd'), (2, 'b')");
  auto restored = Database::Deserialize(db.Serialize());
  ASSERT_TRUE(restored.ok());
  const auto* index = restored->TimeIndexForTesting("t");
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(index->size(), 2u);
  EXPECT_EQ((*index)[0].first, 2);
  EXPECT_EQ((*index)[1].first, 4);
}

// --- Indexed scans and fast paths vs the unindexed engine ------------------

class TunedPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fast_.set_tuning({.use_time_index = true, .use_hash_join = true});
    slow_.set_tuning({.use_time_index = false, .use_hash_join = false});
    for (Database* db : {&fast_, &slow_}) {
      Exec(*db, "CREATE TABLE t(time, grp, val)");
      for (int i = 1; i <= 40; ++i) {
        Exec(*db, "INSERT INTO t VALUES (" + std::to_string(i) + ", " + std::to_string(i % 4) +
                      ", 'v" + std::to_string(i * 7 % 11) + "')");
      }
    }
  }

  void ExpectSame(const std::string& sql) {
    auto a = fast_.Execute(sql);
    auto b = slow_.Execute(sql);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_EQ(Fingerprint(*a), Fingerprint(*b)) << sql;
  }

  Database fast_;
  Database slow_;
};

TEST_F(TunedPairTest, RangeScansMatchFullScans) {
  ExpectSame("SELECT * FROM t WHERE time > 12");
  ExpectSame("SELECT * FROM t WHERE time >= 12 AND time < 30");
  ExpectSame("SELECT * FROM t WHERE time BETWEEN 5 AND 9");
  ExpectSame("SELECT * FROM t WHERE time = 17");
  ExpectSame("SELECT * FROM t WHERE time = 999");
  ExpectSame("SELECT * FROM t WHERE time <= 0");
  ExpectSame("SELECT grp, COUNT(*) FROM t WHERE time > 20 GROUP BY grp");
  // Non-time predicates mixed in: the bound narrows, the rest still filters.
  ExpectSame("SELECT * FROM t WHERE time > 10 AND grp = 2");
}

TEST_F(TunedPairTest, OrderByAndMaxFastPathsMatch) {
  ExpectSame("SELECT MAX(time) FROM t");
  ExpectSame("SELECT MAX(time) FROM t WHERE grp = 3");
  ExpectSame("SELECT MAX(time) FROM t WHERE grp = 99");
  ExpectSame("SELECT * FROM t ORDER BY time DESC LIMIT 5");
  ExpectSame("SELECT * FROM t ORDER BY time DESC LIMIT 5 OFFSET 3");
  ExpectSame("SELECT val FROM t WHERE grp = 1 ORDER BY time DESC LIMIT 1");
  ExpectSame("SELECT * FROM t ORDER BY time DESC LIMIT 0");
}

TEST_F(TunedPairTest, HashJoinMatchesNestedLoop) {
  for (Database* db : {&fast_, &slow_}) {
    Exec(*db, "CREATE TABLE s(grp, label)");
    Exec(*db, "INSERT INTO s VALUES (0, 'zero'), (1, 'one'), (2, 'two'), (5, 'five')");
  }
  ExpectSame("SELECT t.time, s.label FROM t JOIN s ON t.grp = s.grp");
  ExpectSame("SELECT t.time, s.label FROM t LEFT JOIN s ON t.grp = s.grp");
  ExpectSame("SELECT t.time, s.label FROM t JOIN s ON t.grp = s.grp AND t.time > 35");
  ExpectSame("SELECT a.time, b.time FROM t a JOIN t b ON a.grp = b.grp AND a.time < b.time");
}

TEST(TimeFloor, NarrowsScanToNewerTuples) {
  Database db;
  Exec(db, "CREATE TABLE t(time, x)");
  for (int i = 1; i <= 10; ++i) {
    Exec(db, "INSERT INTO t VALUES (" + std::to_string(i) + ", " + std::to_string(i * i) + ")");
  }
  auto r = db.ExecuteWithTimeFloor("SELECT time FROM t ORDER BY time", 5);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 5u);
  EXPECT_EQ(r->rows.front()[0].AsInt(), 6);
  EXPECT_EQ(r->rows.back()[0].AsInt(), 10);
  // The floor composes with the query's own predicates.
  r = db.ExecuteWithTimeFloor("SELECT time FROM t WHERE time < 9 ORDER BY time", 5);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
}

// --- Invariant-suite equivalence on all four SSMs --------------------------

// Snapshots the logger's database and replays every invariant query with the
// optimisations on and off; the results must be byte-identical, with and
// without an incremental floor.
void ExpectSuiteEquivalence(core::AuditLogger& logger) {
  Bytes snapshot = logger.log().database().Serialize();
  auto fast = Database::Deserialize(snapshot);
  auto slow = Database::Deserialize(snapshot);
  ASSERT_TRUE(fast.ok() && slow.ok());
  fast->set_tuning({.use_time_index = true, .use_hash_join = true});
  slow->set_tuning({.use_time_index = false, .use_hash_join = false});
  for (const core::Invariant& inv : logger.module().Invariants()) {
    auto a = fast->Execute(inv.query);
    auto b = slow->Execute(inv.query);
    ASSERT_TRUE(a.ok()) << inv.name << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << inv.name << ": " << b.status().ToString();
    EXPECT_EQ(Fingerprint(*a), Fingerprint(*b)) << inv.name;
    for (int64_t floor : {0, 3, 7}) {
      auto fa = fast->ExecuteWithTimeFloor(inv.query, floor);
      auto fb = slow->ExecuteWithTimeFloor(inv.query, floor);
      ASSERT_TRUE(fa.ok()) << inv.name << " floor " << floor << ": " << fa.status().ToString();
      ASSERT_TRUE(fb.ok()) << inv.name << " floor " << floor << ": " << fb.status().ToString();
      EXPECT_EQ(Fingerprint(*fa), Fingerprint(*fb)) << inv.name << " floor " << floor;
    }
  }
}

std::unique_ptr<core::AuditLogger> MakeLogger(std::unique_ptr<core::ServiceModule> module,
                                              core::PersistenceMode mode = core::PersistenceMode::kMemory,
                                              const std::string& path = "") {
  core::AuditLogOptions log_options;
  log_options.mode = mode;
  log_options.path = path;
  log_options.counter_options.inject_latency = false;
  auto logger = std::make_unique<core::AuditLogger>(
      std::move(module), log_options, core::LoggerOptions{.check_interval = 0},
      crypto::EcdsaPrivateKey::FromSeed(ToBytes("idx")));
  EXPECT_TRUE(logger->Init().ok());
  return logger;
}

void Pump(core::AuditLogger& logger, const http::HttpRequest& req,
          const http::HttpResponse& rsp) {
  ASSERT_TRUE(logger.OnPair(req.Serialize(), rsp.Serialize(), false).ok());
}

TEST(SuiteEquivalence, Git) {
  auto logger = MakeLogger(std::make_unique<ssm::GitModule>());
  services::GitBackend backend;
  auto pump = [&](const http::HttpRequest& req) { Pump(*logger, req, backend.Handle(req)); };
  for (int i = 1; i <= 6; ++i) {
    pump(services::MakeGitPush("r1", {{"main", "a" + std::to_string(i)}}));
    pump(services::MakeGitPush("r2", {{"main", "b" + std::to_string(i)},
                                      {"dev", "d" + std::to_string(i)}}));
    pump(services::MakeGitFetch("r1"));
    pump(services::MakeGitFetch("r2"));
  }
  pump(services::MakeGitPush("r2", {}, {"dev"}));
  pump(services::MakeGitFetch("r2"));
  // Inject both attack classes so the violation rows themselves flow through
  // the joins being compared.
  backend.set_attack(services::GitBackend::Attack::kRollback);
  pump(services::MakeGitFetch("r1"));
  backend.set_attack(services::GitBackend::Attack::kRefDeletion);
  pump(services::MakeGitFetch("r2"));
  ExpectSuiteEquivalence(*logger);
}

TEST(SuiteEquivalence, Dropbox) {
  auto logger = MakeLogger(std::make_unique<ssm::DropboxModule>());
  services::DropboxService service;
  auto pump = [&](const http::HttpRequest& req) { Pump(*logger, req, service.Handle(req)); };
  for (int i = 1; i <= 5; ++i) {
    pump(services::MakeCommitBatch(
        "acct", "host1",
        {{"f" + std::to_string(i) + ".txt", "bl" + std::to_string(i), 100 * i}}));
    pump(services::MakeListRequest("acct"));
  }
  pump(services::MakeCommitBatch("acct", "host1", {{"f2.txt", "", -1}}));
  pump(services::MakeListRequest("acct"));
  service.set_attack(services::DropboxService::Attack::kOmitFile);
  pump(services::MakeListRequest("acct"));
  service.set_attack(services::DropboxService::Attack::kCorruptBlocklist);
  pump(services::MakeListRequest("acct"));
  ExpectSuiteEquivalence(*logger);
}

TEST(SuiteEquivalence, OwnCloud) {
  auto logger = MakeLogger(std::make_unique<ssm::OwnCloudModule>());
  services::OwnCloudService service;
  auto pump = [&](const http::HttpRequest& req) { Pump(*logger, req, service.Handle(req)); };
  pump(services::MakeOwnCloudJoin("doc", "alice"));
  for (int seq = 1; seq <= 4; ++seq) {
    pump(services::MakeOwnCloudSync("doc", 1, "alice", seq, "edit" + std::to_string(seq)));
  }
  pump(services::MakeOwnCloudJoin("doc", "bob"));
  pump(services::MakeOwnCloudSync("doc", 1, "bob", 1, "bob-edit"));
  pump(services::MakeOwnCloudSnapshot("doc", 1, "alice", "content-v1"));
  service.set_attack(services::OwnCloudService::Attack::kDropUpdate);
  pump(services::MakeOwnCloudJoin("doc", "carol"));
  service.set_attack(services::OwnCloudService::Attack::kStaleSnapshot);
  pump(services::MakeOwnCloudJoin("doc", "dave"));
  ExpectSuiteEquivalence(*logger);
}

TEST(SuiteEquivalence, Messaging) {
  auto logger = MakeLogger(std::make_unique<ssm::MessagingModule>());
  services::MessagingService service;
  auto pump = [&](const http::HttpRequest& req) { Pump(*logger, req, service.Handle(req)); };
  for (int i = 1; i <= 4; ++i) {
    pump(services::MakeSendMessage("alice", "bob", "m" + std::to_string(i),
                                   "hello " + std::to_string(i)));
  }
  pump(services::MakeInboxPoll("bob"));
  pump(services::MakeSendMessage("bob", "alice", "m5", "reply"));
  service.set_attack(services::MessagingService::Attack::kModifyMessage);
  pump(services::MakeInboxPoll("alice"));
  pump(services::MakeSendMessage("alice", "bob", "m6", "again"));
  service.set_attack(services::MessagingService::Attack::kDuplicate);
  pump(services::MakeInboxPoll("bob"));
  ExpectSuiteEquivalence(*logger);
}

// --- Incremental checking watermarks ---------------------------------------

TEST(Incremental, WatermarkAdvancesOnCleanCheck) {
  auto logger = MakeLogger(std::make_unique<ssm::GitModule>());
  services::GitBackend backend;
  auto pump = [&](const http::HttpRequest& req) { Pump(*logger, req, backend.Handle(req)); };
  EXPECT_EQ(logger->watermark_for_testing(0), -1);
  pump(services::MakeGitPush("r", {{"main", "c1"}}));
  pump(services::MakeGitFetch("r"));
  auto report = logger->CheckInvariants();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  // Clean check covers every logical time handed out so far (2 pairs).
  EXPECT_EQ(logger->watermark_for_testing(0), 2);
  EXPECT_EQ(logger->watermark_for_testing(1), 2);
}

TEST(Incremental, ViolationPastWatermarkIsCaught) {
  auto logger = MakeLogger(std::make_unique<ssm::GitModule>());
  services::GitBackend backend;
  auto pump = [&](const http::HttpRequest& req) { Pump(*logger, req, backend.Handle(req)); };
  pump(services::MakeGitPush("r", {{"main", "c1"}}));
  pump(services::MakeGitFetch("r"));
  ASSERT_TRUE(logger->CheckInvariants().ok());
  int64_t watermark = logger->watermark_for_testing(0);
  ASSERT_GE(watermark, 0);
  // A bad advertisement appended after the watermark must be found by the
  // narrowed incremental scan.
  ASSERT_TRUE(logger->log()
                  .Append("advertisements",
                          {db::Value(watermark + 10), db::Value(std::string("r")),
                           db::Value(std::string("main")), db::Value(std::string("WRONG"))})
                  .ok());
  auto report = logger->CheckInvariants();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean());
  EXPECT_EQ(report->violations[0].invariant, "git-soundness");
  // A dirty invariant's watermark does not advance.
  EXPECT_EQ(logger->watermark_for_testing(0), watermark);
}

TEST(Incremental, WatermarkResetsAfterTrim) {
  auto logger = MakeLogger(std::make_unique<ssm::GitModule>());
  services::GitBackend backend;
  auto pump = [&](const http::HttpRequest& req) { Pump(*logger, req, backend.Handle(req)); };
  pump(services::MakeGitPush("r", {{"main", "c1"}}));
  pump(services::MakeGitFetch("r"));
  ASSERT_TRUE(logger->CheckInvariants().ok());
  ASSERT_GE(logger->watermark_for_testing(0), 0);
  // The git trim deletes the advertisement, so the deltas past the
  // watermarks no longer describe the log.
  ASSERT_TRUE(logger->Trim().ok());
  EXPECT_EQ(logger->watermark_for_testing(0), -1);
  EXPECT_EQ(logger->watermark_for_testing(1), -1);
  // And the next check still works (full scan) and re-advances.
  auto report = logger->CheckInvariants();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_GE(logger->watermark_for_testing(0), 0);
}

TEST(Incremental, TrimWithNothingToDeleteSkipsCounterRound) {
  std::string path = std::string(::testing::TempDir()) + "/db_index_trim.log";
  auto logger =
      MakeLogger(std::make_unique<ssm::GitModule>(), core::PersistenceMode::kDisk, path);
  services::GitBackend backend;
  auto pump = [&](const http::HttpRequest& req) { Pump(*logger, req, backend.Handle(req)); };
  // One update, no advertisements: both trimming queries delete nothing.
  pump(services::MakeGitPush("r", {{"main", "c1"}}));
  auto before = logger->log().counter().Read();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(logger->Trim().ok());
  ASSERT_TRUE(logger->Trim().ok());
  auto after = logger->log().counter().Read();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);  // early return: no rebuild, no counter round
  // Once there is something to trim, the rebuild (and its counter round)
  // runs again.
  pump(services::MakeGitFetch("r"));
  before = logger->log().counter().Read();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(logger->Trim().ok());
  after = logger->log().counter().Read();
  ASSERT_TRUE(after.ok());
  EXPECT_GT(*after, *before);
}

}  // namespace
}  // namespace seal
