#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "src/core/audit_log.h"

namespace seal::core {
namespace {

crypto::EcdsaPrivateKey TestKey() {
  return crypto::EcdsaPrivateKey::FromSeed(ToBytes("audit-log-test-key"));
}

AuditLogOptions MemOptions() {
  AuditLogOptions options;
  options.mode = PersistenceMode::kMemory;
  options.counter_options.inject_latency = false;
  return options;
}

AuditLogOptions DiskOptions(const std::string& path) {
  AuditLogOptions options;
  options.mode = PersistenceMode::kDisk;
  options.path = path;
  options.counter_options.inject_latency = false;
  return options;
}

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

db::Row GitUpdateRow(int64_t time, const std::string& branch, const std::string& cid) {
  return {db::Value(time), db::Value(std::string("r")), db::Value(branch), db::Value(cid),
          db::Value(std::string("update"))};
}

class AuditLogTest : public ::testing::Test {
 protected:
  static std::vector<std::string> GitSchema() {
    return {"CREATE TABLE updates(time, repo, branch, cid, type)",
            "CREATE TABLE advertisements(time, repo, branch, cid)"};
  }
};

TEST_F(AuditLogTest, AppendInsertsAndChains) {
  AuditLog log(MemOptions(), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  Bytes head0 = log.chain_head();
  ASSERT_TRUE(log.Append("updates", GitUpdateRow(1, "main", "c1")).ok());
  EXPECT_NE(log.chain_head(), head0);
  EXPECT_EQ(log.entry_count(), 1u);
  auto rows = log.Query("SELECT * FROM updates");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);
}

TEST_F(AuditLogTest, AppendRequiresTimeColumn) {
  AuditLog log(MemOptions(), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  EXPECT_FALSE(log.Append("updates", {db::Value(std::string("no-time"))}).ok());
  EXPECT_FALSE(log.Append("updates", {}).ok());
}

TEST_F(AuditLogTest, ChainIsDeterministic) {
  // The chain covers (time, wall clock, table, row); with identical
  // inputs -- including explicit wall timestamps -- two logs agree.
  AuditLog a(MemOptions(), TestKey());
  AuditLog b(MemOptions(), TestKey());
  ASSERT_TRUE(a.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(b.ExecuteSchema(GitSchema()).ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        a.Append("updates", GitUpdateRow(i, "main", "c" + std::to_string(i)), 1000 + i).ok());
    ASSERT_TRUE(
        b.Append("updates", GitUpdateRow(i, "main", "c" + std::to_string(i)), 1000 + i).ok());
  }
  EXPECT_EQ(a.chain_head(), b.chain_head());
  // Divergence in content diverges the chain.
  ASSERT_TRUE(a.Append("updates", GitUpdateRow(6, "main", "cX"), 2000).ok());
  ASSERT_TRUE(b.Append("updates", GitUpdateRow(6, "main", "cY"), 2000).ok());
  EXPECT_NE(a.chain_head(), b.chain_head());
  // ... and so does divergence in the wall timestamp alone.
  AuditLog c(MemOptions(), TestKey());
  AuditLog d(MemOptions(), TestKey());
  ASSERT_TRUE(c.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(d.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(c.Append("updates", GitUpdateRow(1, "main", "c1"), 1).ok());
  ASSERT_TRUE(d.Append("updates", GitUpdateRow(1, "main", "c1"), 2).ok());
  EXPECT_NE(c.chain_head(), d.chain_head());
}

TEST_F(AuditLogTest, PersistAndVerify) {
  std::string path = TempPath("audit_persist.log");
  crypto::EcdsaPrivateKey key = TestKey();
  AuditLog log(DiskOptions(path), key);
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(log.Append("updates", GitUpdateRow(i, "main", "c" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(log.CommitHead().ok());
  auto verified = AuditLog::VerifyLogFile(path, key.public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(*verified, 10u);
}

TEST_F(AuditLogTest, TamperedEntryDetected) {
  std::string path = TempPath("audit_tamper.log");
  crypto::EcdsaPrivateKey key = TestKey();
  AuditLog log(DiskOptions(path), key);
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(log.Append("updates", GitUpdateRow(i, "main", "c" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(log.CommitHead().ok());
  // The provider edits the stored log: flip one byte in the middle.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 40, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);
  EXPECT_FALSE(AuditLog::VerifyLogFile(path, key.public_key(), log.counter()).ok());
}

TEST_F(AuditLogTest, ForgedSignatureDetected) {
  std::string path = TempPath("audit_forge.log");
  crypto::EcdsaPrivateKey key = TestKey();
  {
    AuditLog log(DiskOptions(path), key);
    ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
    ASSERT_TRUE(log.Append("updates", GitUpdateRow(1, "main", "c1")).ok());
    ASSERT_TRUE(log.CommitHead().ok());
  }
  // The provider re-signs a modified log with its OWN key: clients verify
  // with the enclave's public key, so this must fail.
  crypto::EcdsaPrivateKey provider_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("provider"));
  AuditLog forged(DiskOptions(path), provider_key);
  ASSERT_TRUE(forged.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(forged.Append("updates", GitUpdateRow(1, "main", "cEVIL")).ok());
  ASSERT_TRUE(forged.CommitHead().ok());
  EXPECT_FALSE(AuditLog::VerifyLogFile(path, key.public_key(), forged.counter()).ok());
}

TEST_F(AuditLogTest, RollbackDetectedViaCounter) {
  std::string path = TempPath("audit_rollback.log");
  std::string backup = TempPath("audit_rollback.bak");
  std::string backup_sig = TempPath("audit_rollback.bak.sig");
  crypto::EcdsaPrivateKey key = TestKey();
  AuditLog log(DiskOptions(path), key);
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(log.Append("updates", GitUpdateRow(1, "main", "c1")).ok());
  ASSERT_TRUE(log.CommitHead().ok());
  // Snapshot the (validly signed!) old state.
  auto copy = [](const std::string& from, const std::string& to) {
    std::FILE* in = std::fopen(from.c_str(), "rb");
    std::FILE* out = std::fopen(to.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    int c;
    while ((c = std::fgetc(in)) != EOF) {
      std::fputc(c, out);
    }
    std::fclose(in);
    std::fclose(out);
  };
  copy(path, backup);
  copy(path + ".sig", backup_sig);
  // More activity advances the counter.
  ASSERT_TRUE(log.Append("updates", GitUpdateRow(2, "main", "c2")).ok());
  ASSERT_TRUE(log.CommitHead().ok());
  // The old state still verifies entry-wise... but the counter gives the
  // rollback away.
  copy(backup, path);
  copy(backup_sig, path + ".sig");
  auto verified = AuditLog::VerifyLogFile(path, key.public_key(), log.counter());
  ASSERT_FALSE(verified.ok());
  EXPECT_NE(verified.status().message().find("rollback"), std::string::npos);
}

TEST_F(AuditLogTest, TrimRecomputesChainAndStillVerifies) {
  std::string path = TempPath("audit_trim.log");
  crypto::EcdsaPrivateKey key = TestKey();
  AuditLog log(DiskOptions(path), key);
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(log.Append("updates", GitUpdateRow(i, "main", "c" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(log.CommitHead().ok());
  uint64_t size_before = log.persisted_bytes();
  ASSERT_TRUE(log.Trim({"DELETE FROM updates WHERE time NOT IN "
                        "(SELECT MAX(time) FROM updates GROUP BY repo, branch)"})
                  .ok());
  EXPECT_EQ(log.entry_count(), 1u);
  EXPECT_LT(log.persisted_bytes(), size_before);
  auto verified = AuditLog::VerifyLogFile(path, key.public_key(), log.counter());
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(*verified, 1u);
  // The surviving row is the latest one.
  auto rows = log.Query("SELECT cid FROM updates");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsText(), "c6");
}

TEST_F(AuditLogTest, EncryptedLogRoundTrip) {
  std::string path = TempPath("audit_encrypted.log");
  crypto::EcdsaPrivateKey key = TestKey();
  AuditLogOptions options = DiskOptions(path);
  options.encryption_key = FromHex("000102030405060708090a0b0c0d0e0f");
  AuditLog log(options, key);
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(log.Append("updates", GitUpdateRow(1, "main", "secret-cid")).ok());
  ASSERT_TRUE(log.CommitHead().ok());
  // Ciphertext on disk: the payload must not appear in the clear.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    contents.push_back(static_cast<char>(c));
  }
  std::fclose(f);
  EXPECT_EQ(contents.find("secret-cid"), std::string::npos);
  // Verification succeeds with the key, fails without.
  EXPECT_TRUE(
      AuditLog::VerifyLogFile(path, key.public_key(), log.counter(), options.encryption_key)
          .ok());
  EXPECT_FALSE(AuditLog::VerifyLogFile(path, key.public_key(), log.counter()).ok());
}

TEST_F(AuditLogTest, EncryptedRecordsCarryUniqueNonces) {
  std::string path = TempPath("audit_nonces.log");
  AuditLogOptions options = DiskOptions(path);
  options.encryption_key = FromHex("000102030405060708090a0b0c0d0e0f");
  AuditLog log(options, TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  constexpr int kRecords = 64;
  for (int i = 1; i <= kRecords; ++i) {
    ASSERT_TRUE(log.Append("updates", GitUpdateRow(i, "main", "c" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(log.CommitHead().ok());
  // Walk the on-disk frames: every record's leading 12 bytes (the GCM
  // nonce) must be distinct even though one cached context sealed them all.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  Bytes data;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    data.push_back(static_cast<uint8_t>(c));
  }
  std::fclose(f);
  std::set<Bytes> nonces;
  size_t off = 0;
  while (off < data.size()) {
    ASSERT_LE(off + 4, data.size());
    uint32_t len = LoadBe32(data.data() + off);
    off += 4;
    ASSERT_LE(off + len, data.size());
    ASSERT_GE(len, crypto::kGcmNonceSize + crypto::kGcmTagSize);
    nonces.insert(Bytes(data.begin() + static_cast<ptrdiff_t>(off),
                        data.begin() + static_cast<ptrdiff_t>(off + crypto::kGcmNonceSize)));
    off += len;
  }
  EXPECT_EQ(nonces.size(), static_cast<size_t>(kRecords));
}

TEST_F(AuditLogTest, EncryptedTrimRewriteStillVerifiesAndReads) {
  std::string path = TempPath("audit_encrypted_trim.log");
  crypto::EcdsaPrivateKey key = TestKey();
  AuditLogOptions options = DiskOptions(path);
  options.encryption_key = FromHex("feffe9928665731c6d6a8f9467308308");
  AuditLog log(options, key);
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(log.Append("updates", GitUpdateRow(i, "main", "c" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(log.CommitHead().ok());
  // Trim to the latest update per branch; the rewrite re-encrypts the
  // survivors with fresh nonces from the cached context.
  size_t deleted = 0;
  ASSERT_TRUE(log.Trim({"DELETE FROM updates WHERE time < 6"}, &deleted).ok());
  EXPECT_EQ(deleted, 5u);
  auto verified =
      AuditLog::VerifyLogFile(path, key.public_key(), log.counter(), options.encryption_key);
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(*verified, 1u);
  auto entries = AuditLog::ReadVerifiedEntries(path, options.encryption_key);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].values[3].AsText(), "c6");
}

TEST_F(AuditLogTest, LogEntrySerializationRoundTrip) {
  LogEntry entry;
  entry.time = 42;
  entry.table = "updates";
  entry.values = {db::Value(static_cast<int64_t>(42)), db::Value(std::string("repo")),
                  db::Value(2.5), db::Value::Null()};
  Bytes wire = entry.Serialize();
  size_t off = 0;
  auto decoded = LogEntry::Deserialize(wire, off);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->time, 42);
  EXPECT_EQ(decoded->table, "updates");
  ASSERT_EQ(decoded->values.size(), 4u);
  EXPECT_EQ(decoded->values[1].AsText(), "repo");
  EXPECT_DOUBLE_EQ(decoded->values[2].AsReal(), 2.5);
  EXPECT_TRUE(decoded->values[3].is_null());
  EXPECT_EQ(off, wire.size());
}

// --- hostile-input deserialization ----------------------------------------

// time + wall clock + table, i.e. everything before the value count.
Bytes EntryPrefix(const std::string& table) {
  Bytes wire;
  AppendBe64(wire, 1);
  AppendBe64(wire, 2);
  AppendBe32(wire, static_cast<uint32_t>(table.size()));
  Append(wire, table);
  return wire;
}

// A full entry whose values carry the given raw (tagged) payloads verbatim.
Bytes EntryWithRawValues(const std::vector<std::string>& raw) {
  Bytes wire = EntryPrefix("updates");
  AppendBe32(wire, static_cast<uint32_t>(raw.size()));
  for (const std::string& s : raw) {
    AppendBe32(wire, static_cast<uint32_t>(s.size()));
    Append(wire, s);
  }
  return wire;
}

Status DeserializeStatus(BytesView wire) {
  size_t off = 0;
  return LogEntry::Deserialize(wire, off).status();
}

TEST_F(AuditLogTest, LogEntryHugeValueCountRejected) {
  // A count that cannot possibly fit in the frame must be rejected up
  // front, before any allocation proportional to it.
  Bytes wire = EntryPrefix("updates");
  AppendBe32(wire, 0xFFFFFFFFu);
  Status status = DeserializeStatus(wire);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("more values"), std::string::npos);

  // Same with a count just one past what the remaining bytes can hold.
  Bytes tight = EntryWithRawValues({"I1", "I2"});
  // Patch the count from 2 to 3: the two 6-byte value frames can hold at
  // most two values.
  const size_t count_off = EntryPrefix("updates").size();
  tight[count_off + 3] = 3;
  EXPECT_FALSE(DeserializeStatus(tight).ok());
}

TEST_F(AuditLogTest, LogEntryMalformedValuesRejected) {
  // Valid control case first so the helpers themselves are trusted.
  EXPECT_TRUE(DeserializeStatus(EntryWithRawValues({"N", "I42", "R2.5", "T2:hi"})).ok());

  const std::vector<std::string> hostile = {
      "Iabc",    // integer with no digits
      "I12x",    // integer with trailing junk
      "I",       // integer with empty payload
      "R",       // real with empty payload
      "Rxyz",    // real with no digits
      "R1.5x",   // real with trailing junk
      "T5:ab",   // text length larger than payload
      "T1:ab",   // text length smaller than payload
      "Tab",     // text without a colon
      "Nx",      // null with a payload
      "X",       // unknown tag
  };
  for (const std::string& value : hostile) {
    EXPECT_FALSE(DeserializeStatus(EntryWithRawValues({value})).ok())
        << "accepted hostile value: " << value;
  }
}

TEST_F(AuditLogTest, LogEntryZeroLengthValueRejected) {
  Bytes wire = EntryPrefix("updates");
  AppendBe32(wire, 1);
  AppendBe32(wire, 0);  // zero-length value frame
  wire.push_back('N');  // spare byte so the count passes the density guard
  Status status = DeserializeStatus(wire);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("zero-length"), std::string::npos);
}

TEST_F(AuditLogTest, LogEntryTruncationAtEveryBoundaryRejected) {
  const Bytes wire = EntryWithRawValues({"I7", "T4:text", "N", "R0.25"});
  size_t off = 0;
  ASSERT_TRUE(LogEntry::Deserialize(wire, off).ok());
  ASSERT_EQ(off, wire.size());
  // Every strict prefix is missing data somewhere -- header, table, value
  // length, or value payload -- and must fail cleanly, never crash or
  // return a partially-parsed entry.
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(DeserializeStatus(BytesView(wire).subspan(0, len)).ok())
        << "prefix of " << len << " bytes parsed";
  }
}

TEST_F(AuditLogTest, LogEntryHugeTableLengthRejected) {
  Bytes wire;
  AppendBe64(wire, 1);
  AppendBe64(wire, 2);
  AppendBe32(wire, 0xFFFFFFF0u);  // table length far past the frame
  AppendBe32(wire, 0);
  EXPECT_FALSE(DeserializeStatus(wire).ok());
}

TEST_F(AuditLogTest, ReadVerifiedEntriesRejectsHostileRecords) {
  const std::string path = TempPath("hostile_records.log");
  // Record with trailing bytes after a valid entry.
  {
    Bytes file;
    Bytes wire = EntryWithRawValues({"I1"});
    wire.push_back(0x00);  // one stray byte inside the frame
    AppendBe32(file, static_cast<uint32_t>(wire.size()));
    Append(file, wire);
    ASSERT_TRUE(DurableWriteFile(path, file, /*append=*/false, /*sync=*/false).ok());
    auto entries = AuditLog::ReadVerifiedEntries(path);
    ASSERT_FALSE(entries.ok());
    EXPECT_NE(entries.status().message().find("trailing bytes"), std::string::npos);
  }
  // Frame length running past the end of the file.
  {
    Bytes file;
    AppendBe32(file, 1000);
    file.push_back(0xAB);
    ASSERT_TRUE(DurableWriteFile(path, file, /*append=*/false, /*sync=*/false).ok());
    auto entries = AuditLog::ReadVerifiedEntries(path);
    ASSERT_FALSE(entries.ok());
    EXPECT_NE(entries.status().message().find("truncated record body"), std::string::npos);
  }
  // Frame cut off inside the 4-byte length prefix.
  {
    Bytes file = {0x00, 0x00};
    ASSERT_TRUE(DurableWriteFile(path, file, /*append=*/false, /*sync=*/false).ok());
    auto entries = AuditLog::ReadVerifiedEntries(path);
    ASSERT_FALSE(entries.ok());
    EXPECT_NE(entries.status().message().find("truncated record frame"), std::string::npos);
  }
  std::remove(path.c_str());
}

// --- trim wall-clock preservation -----------------------------------------

TEST_F(AuditLogTest, TrimPreservesDistinctWallClocksForEqualTimeRows) {
  // Regression: the trim rebuild used to recover wall clocks through a
  // (table, time) map, so two rows sharing a ticket collapsed onto one
  // wall timestamp and the rebuilt chain no longer matched reality.
  const std::string path = TempPath("trim_wall.log");
  AuditLog log(DiskOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(log.Append("updates", GitUpdateRow(1, "main", "a"), 100).ok());
  ASSERT_TRUE(log.Append("updates", GitUpdateRow(1, "dev", "b"), 200).ok());
  ASSERT_TRUE(log.Append("updates", GitUpdateRow(2, "main", "c"), 300).ok());
  ASSERT_TRUE(log.CommitHead().ok());
  size_t deleted = 0;
  ASSERT_TRUE(log.Trim({"DELETE FROM updates WHERE time = 2"}, &deleted).ok());
  EXPECT_EQ(deleted, 1u);
  auto entries = AuditLog::ReadVerifiedEntries(path);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].wall_nanos, 100);
  EXPECT_EQ((*entries)[1].wall_nanos, 200);
  auto verified = AuditLog::VerifyLogFile(path, TestKey().public_key(), log.counter());
  EXPECT_TRUE(verified.ok());
}

TEST_F(AuditLogTest, TrimPreservesWallClocksForIdenticalRows) {
  // Even byte-identical surviving rows keep their own wall clocks, matched
  // first-in-first-out so the rebuilt order equals the append order.
  const std::string path = TempPath("trim_wall_dup.log");
  AuditLog log(DiskOptions(path), TestKey());
  ASSERT_TRUE(log.ExecuteSchema(GitSchema()).ok());
  ASSERT_TRUE(log.Append("updates", GitUpdateRow(1, "main", "a"), 100).ok());
  ASSERT_TRUE(log.Append("updates", GitUpdateRow(1, "main", "a"), 200).ok());
  ASSERT_TRUE(log.Append("updates", GitUpdateRow(9, "main", "z"), 300).ok());
  ASSERT_TRUE(log.CommitHead().ok());
  ASSERT_TRUE(log.Trim({"DELETE FROM updates WHERE time = 9"}).ok());
  auto entries = AuditLog::ReadVerifiedEntries(path);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].wall_nanos, 100);
  EXPECT_EQ((*entries)[1].wall_nanos, 200);
}

}  // namespace
}  // namespace seal::core
