// Event-driven connection core: HttpServer/ProxyServer on the reactor
// (Options::event_driven), cooperative lthread tasks multiplexed onto a
// small fixed set of OS threads by the poller. Covers TLS-over-reactor,
// idle keep-alive scaling past the thread count, blocking-vs-event-driven
// equivalence on the same request trace, LibSEAL behind the reactor (the
// asyncall cooperative path), and prompt shutdown with parked connections.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/libseal.h"
#include "src/obs/obs.h"
#include "src/services/git_service.h"
#include "src/services/http_server.h"
#include "src/services/https_client.h"
#include "src/services/proxy.h"
#include "src/services/static_content.h"
#include "src/ssm/git_ssm.h"
#include "src/tls/x509.h"

namespace seal::services {
namespace {

struct Pki {
  Pki() {
    ca = tls::MakeSelfSignedCa("Reactor CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
    server_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("srv"));
    server_cert = tls::IssueCertificate(ca, "server", server_key.public_key(), 2);
  }
  tls::CertifiedKey ca;
  crypto::EcdsaPrivateKey server_key;
  tls::Certificate server_cert;
};

Pki& GetPki() {
  static Pki pki;
  return pki;
}

tls::TlsConfig ServerTlsConfig() {
  tls::TlsConfig config;
  config.certificate = GetPki().server_cert;
  config.private_key = GetPki().server_key;
  return config;
}

tls::TlsConfig ClientTlsConfig() {
  tls::TlsConfig config;
  config.trusted_roots = {GetPki().ca.cert};
  return config;
}

HttpServer::Options EventDriven(const std::string& address) {
  HttpServer::Options options;
  options.address = address;
  options.event_driven = true;
  options.reactor_threads = 2;
  return options;
}

TEST(ReactorHttpTest, ServesOverTls) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, EventDriven("web:443"), &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.worker_thread_count(), 2u);

  tls::TlsConfig client_tls = ClientTlsConfig();
  auto rsp = OneShotRequest(&network, "web:443", client_tls, MakeContentRequest(512));
  ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
  EXPECT_EQ(rsp->status, 200);
  EXPECT_EQ(rsp->body.size(), 512u);
  server.Stop();
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(ReactorHttpTest, KeepAliveManyRequests) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, EventDriven("web:443"), &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  auto client = HttpsClient::Connect(&network, "web:443", client_tls);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 20; ++i) {
    auto rsp = (*client)->RoundTrip(MakeContentRequest(i * 10, /*keep_alive=*/true));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
    EXPECT_EQ(rsp->body.size(), static_cast<size_t>(i * 10));
  }
  (*client)->Close();
  server.Stop();
  EXPECT_EQ(server.requests_served(), 20u);
}

// The tentpole property: connections are bounded by memory, not threads.
// Far more simultaneously-open idle keep-alive connections than reactor
// threads, all still serviceable.
TEST(ReactorHttpTest, IdleConnectionsExceedThreadCount) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, EventDriven("web:443"), &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();

  constexpr int kConns = 64;  // 32x the reactor's 2 threads
  std::vector<std::unique_ptr<HttpsClient>> clients;
  for (int i = 0; i < kConns; ++i) {
    auto client = HttpsClient::Connect(&network, "web:443", client_tls);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto rsp = (*client)->RoundTrip(MakeContentRequest(32, /*keep_alive=*/true));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
    clients.push_back(std::move(*client));
  }
  // All kConns connections are now open and idle at once on 2 threads.
  EXPECT_EQ(server.worker_thread_count(), 2u);
  // Every one of them is still live: a second request round-trips.
  for (auto& client : clients) {
    auto rsp = client->RoundTrip(MakeContentRequest(8, /*keep_alive=*/true));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
  }
  EXPECT_EQ(server.requests_served(), static_cast<uint64_t>(2 * kConns));
  for (auto& client : clients) {
    client->Close();
  }
  server.Stop();

  // The reactor actually did the work: poller dispatches and cross-thread
  // wakeups were observed.
  obs::Snapshot snapshot = obs::Registry::Global().TakeSnapshot();
  EXPECT_GT(snapshot.counter("reactor_wakeups_total"), 0u);
  EXPECT_GT(snapshot.counter("poller_dispatch_total"), 0u);
}

TEST(ReactorHttpTest, ConcurrentClientThreads) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, EventDriven("web:443"), &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        auto rsp = OneShotRequest(&network, "web:443", client_tls, MakeContentRequest(64));
        ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  server.Stop();
  EXPECT_EQ(server.requests_served(), static_cast<uint64_t>(kClients * 5));
}

// Replays one request trace through both connection models and demands
// byte-identical responses: the reactor must be observationally equivalent
// to the blocking pool.
TEST(ReactorHttpTest, BlockingVsEventDrivenEquivalence) {
  struct TraceEntry {
    size_t size;
    bool keep_alive;
  };
  const std::vector<TraceEntry> trace = {
      {0, true},  {1, true},   {64, false},  {512, true}, {313, true},
      {2, false}, {100, true}, {4096, true}, {7, true},   {32, false},
  };

  auto replay = [&](bool event_driven) {
    net::Network network;
    tls::TlsConfig server_tls = ServerTlsConfig();
    PlainTransport transport(server_tls);
    HttpServer::Options options;
    options.address = "web:443";
    options.event_driven = event_driven;
    HttpServer server(&network, options, &transport, ServeStaticContent);
    EXPECT_TRUE(server.Start().ok());
    tls::TlsConfig client_tls = ClientTlsConfig();

    std::vector<std::pair<int, std::string>> results;
    std::unique_ptr<HttpsClient> client;
    for (const TraceEntry& entry : trace) {
      if (client == nullptr) {
        auto connected = HttpsClient::Connect(&network, "web:443", client_tls);
        EXPECT_TRUE(connected.ok()) << connected.status().ToString();
        client = std::move(*connected);
      }
      auto rsp = client->RoundTrip(MakeContentRequest(entry.size, entry.keep_alive));
      EXPECT_TRUE(rsp.ok()) << rsp.status().ToString();
      results.emplace_back(rsp.ok() ? rsp->status : -1, rsp.ok() ? rsp->body : "");
      if (!entry.keep_alive) {
        client.reset();  // server closed; dial fresh for the next entry
      }
    }
    if (client != nullptr) {
      client->Close();
    }
    uint64_t served = server.requests_served();
    server.Stop();
    EXPECT_EQ(served, trace.size());
    return results;
  };

  auto blocking = replay(false);
  auto event_driven = replay(true);
  ASSERT_EQ(blocking.size(), event_driven.size());
  for (size_t i = 0; i < blocking.size(); ++i) {
    EXPECT_EQ(blocking[i].first, event_driven[i].first) << "entry " << i;
    EXPECT_EQ(blocking[i].second, event_driven[i].second) << "entry " << i;
  }
}

// Stop() with idle keep-alive connections parked on reactor tasks must
// complete promptly (the tasks are woken, observe stopping, and exit).
TEST(ReactorHttpTest, StopCompletesWithIdleKeepAliveConnections) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, EventDriven("web:443"), &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();

  std::vector<std::unique_ptr<HttpsClient>> clients;
  for (int i = 0; i < 8; ++i) {
    auto client = HttpsClient::Connect(&network, "web:443", client_tls);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE((*client)->RoundTrip(MakeContentRequest(16, /*keep_alive=*/true)).ok());
    clients.push_back(std::move(*client));
  }
  // All 8 server-side tasks are parked in a read on idle connections.
  auto stopped = std::async(std::launch::async, [&] { server.Stop(); });
  ASSERT_EQ(stopped.wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "Stop() hung behind idle keep-alive reactor connections";
}

// Connection churn racing shutdown: dialers keep arriving while Stop runs.
// Nothing may hang or crash; late dials fail or get aborted streams.
TEST(ReactorHttpTest, ChurnDuringStop) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTlsConfig();
  PlainTransport transport(server_tls);
  HttpServer server(&network, EventDriven("web:443"), &transport, ServeStaticContent);
  ASSERT_TRUE(server.Start().ok());
  tls::TlsConfig client_tls = ClientTlsConfig();

  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (int c = 0; c < 4; ++c) {
    churners.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Failures are expected once Stop begins; only hangs are bugs.
        (void)OneShotRequest(&network, "web:443", client_tls, MakeContentRequest(16));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();
  stop.store(true, std::memory_order_release);
  for (auto& t : churners) {
    t.join();
  }
}

// LibSEAL behind the reactor: TLS terminates inside the simulated enclave,
// requests cross the async-call boundary from cooperative lthread tasks
// (the any-slot + Yield path), and auditing still works.
TEST(ReactorLibSealTest, GitServiceEventDriven) {
  net::Network network;
  core::LibSealOptions options;
  options.enclave.inject_costs = false;
  options.use_async_calls = true;
  options.async.enclave_threads = 2;
  options.async.tasks_per_thread = 16;
  options.audit_log.counter_options.inject_latency = false;
  options.logger.check_interval = 0;
  options.tls.certificate = GetPki().server_cert;
  options.tls.private_key = GetPki().server_key;
  core::LibSealRuntime runtime(std::move(options), std::make_unique<ssm::GitModule>());
  ASSERT_TRUE(runtime.Init().ok());
  LibSealTransport transport(&runtime);
  GitBackend backend;
  HttpServer server(&network, EventDriven("git:443"), &transport,
                    [&](const http::HttpRequest& r) { return backend.Handle(r); });
  ASSERT_TRUE(server.Start().ok());

  tls::TlsConfig client_tls = ClientTlsConfig();
  constexpr int kClients = 6;  // concurrent tasks sharing 2 shard threads
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = HttpsClient::Connect(&network, "git:443", client_tls);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      std::string repo = "repo" + std::to_string(c);
      for (int i = 1; i <= 3; ++i) {
        auto rsp = (*client)->RoundTrip(MakeGitPush(repo, {{"main", "c" + std::to_string(i)}}));
        ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
        EXPECT_EQ(rsp->status, 200);
      }
      auto fetch = (*client)->RoundTrip(MakeGitFetch(repo));
      ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
      EXPECT_EQ(fetch->status, 200);
      (*client)->Close();
      ok_count.fetch_add(1);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ok_count.load(), kClients);
  server.Stop();
  runtime.Shutdown();
}

TEST(ReactorProxyTest, EventDrivenProxyEndToEnd) {
  net::Network network;
  tls::TlsConfig origin_tls = ServerTlsConfig();
  PlainTransport origin_transport(origin_tls);
  HttpServer origin(&network, {.address = "origin:443"}, &origin_transport, ServeStaticContent);
  ASSERT_TRUE(origin.Start().ok());

  tls::TlsConfig proxy_tls = ServerTlsConfig();
  PlainTransport proxy_transport(proxy_tls);
  ProxyServer::Options proxy_options;
  proxy_options.listen_address = "proxy:3128";
  proxy_options.upstream_address = "origin:443";
  proxy_options.upstream_tls = ClientTlsConfig();
  proxy_options.event_driven = true;
  proxy_options.reactor_threads = 2;
  ProxyServer proxy(&network, proxy_options, &proxy_transport);
  ASSERT_TRUE(proxy.Start().ok());
  EXPECT_EQ(proxy.worker_thread_count(), 2u);

  tls::TlsConfig client_tls = ClientTlsConfig();
  constexpr int kClients = 8;  // 4x the reactor's thread count, all live
  std::vector<std::unique_ptr<HttpsClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    auto client = HttpsClient::Connect(&network, "proxy:3128", client_tls);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto rsp = (*client)->RoundTrip(MakeContentRequest(128, /*keep_alive=*/true));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
    EXPECT_EQ(rsp->body.size(), 128u);
    clients.push_back(std::move(*client));
  }
  for (auto& client : clients) {  // all conns still live after being idle
    auto rsp = client->RoundTrip(MakeContentRequest(64, /*keep_alive=*/true));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
    client->Close();
  }
  // Check after Stop(): the proxy counts a request only after relaying the
  // response, which races the client's read of it.
  proxy.Stop();
  origin.Stop();
  EXPECT_EQ(proxy.requests_proxied(), static_cast<uint64_t>(2 * kClients));
}

// Proxy Stop() with idle proxied connections: both legs of every proxied
// connection are parked on one reactor task; Stop must abort them.
TEST(ReactorProxyTest, StopCompletesWithIdleProxiedConnections) {
  net::Network network;
  tls::TlsConfig origin_tls = ServerTlsConfig();
  PlainTransport origin_transport(origin_tls);
  HttpServer origin(&network, {.address = "origin:443"}, &origin_transport, ServeStaticContent);
  ASSERT_TRUE(origin.Start().ok());
  tls::TlsConfig proxy_tls = ServerTlsConfig();
  PlainTransport proxy_transport(proxy_tls);
  ProxyServer::Options proxy_options;
  proxy_options.listen_address = "proxy:3128";
  proxy_options.upstream_address = "origin:443";
  proxy_options.upstream_tls = ClientTlsConfig();
  proxy_options.event_driven = true;
  ProxyServer proxy(&network, proxy_options, &proxy_transport);
  ASSERT_TRUE(proxy.Start().ok());

  tls::TlsConfig client_tls = ClientTlsConfig();
  std::vector<std::unique_ptr<HttpsClient>> clients;
  for (int i = 0; i < 4; ++i) {
    auto client = HttpsClient::Connect(&network, "proxy:3128", client_tls);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE((*client)->RoundTrip(MakeContentRequest(16, /*keep_alive=*/true)).ok());
    clients.push_back(std::move(*client));
  }
  auto stopped = std::async(std::launch::async, [&] { proxy.Stop(); });
  ASSERT_EQ(stopped.wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "proxy Stop() hung behind idle proxied reactor connections";
  origin.Stop();
}

}  // namespace
}  // namespace seal::services
