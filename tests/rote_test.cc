#include <gtest/gtest.h>

#include <thread>

#include "src/common/clock.h"
#include "src/rote/rote.h"

namespace seal::rote {
namespace {

RoteCounter::Options FastOptions() {
  RoteCounter::Options options;
  options.inject_latency = false;
  return options;
}

TEST(Rote, ClusterSizeIs3fPlus1) {
  RoteCounter::Options options = FastOptions();
  options.f = 1;
  RoteCounter c1(options);
  EXPECT_EQ(c1.cluster_size(), 4u);
  EXPECT_EQ(c1.quorum(), 3);
  options.f = 2;
  RoteCounter c2(options);
  EXPECT_EQ(c2.cluster_size(), 7u);
  EXPECT_EQ(c2.quorum(), 5);
}

TEST(Rote, IncrementMonotonic) {
  RoteCounter counter(FastOptions());
  for (uint64_t i = 1; i <= 20; ++i) {
    auto v = counter.Increment();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, i);
  }
  auto r = counter.Read();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 20u);
}

TEST(Rote, ToleratesFFailures) {
  RoteCounter counter(FastOptions());  // f = 1
  counter.node(0)->set_mode(RoteNode::Mode::kDown);
  auto v = counter.Increment();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1u);
}

TEST(Rote, ToleratesFMalicious) {
  RoteCounter counter(FastOptions());
  counter.node(1)->set_mode(RoteNode::Mode::kMalicious);
  ASSERT_TRUE(counter.Increment().ok());
  ASSERT_TRUE(counter.Increment().ok());
  auto r = counter.Read();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);
}

TEST(Rote, FailsBeyondF) {
  RoteCounter counter(FastOptions());  // f = 1, n = 4, quorum 3
  counter.node(0)->set_mode(RoteNode::Mode::kDown);
  counter.node(1)->set_mode(RoteNode::Mode::kDown);
  EXPECT_FALSE(counter.Increment().ok());
}

TEST(Rote, RecoversWhenNodesReturn) {
  RoteCounter counter(FastOptions());
  counter.node(0)->set_mode(RoteNode::Mode::kDown);
  counter.node(1)->set_mode(RoteNode::Mode::kDown);
  EXPECT_FALSE(counter.Increment().ok());
  counter.node(0)->set_mode(RoteNode::Mode::kHealthy);
  auto v = counter.Increment();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1u);
}

TEST(Rote, LatencyMuchLowerThanHardwareCounter) {
  // The point of ROTE in the paper: a cluster round trip (~hundreds of
  // microseconds) instead of ~100 ms flash writes.
  RoteCounter::Options options;
  options.network_rtt_nanos = 200'000;
  RoteCounter counter(options);
  int64_t start = NowNanos();
  ASSERT_TRUE(counter.Increment().ok());
  int64_t elapsed = NowNanos() - start;
  EXPECT_GE(elapsed, 200'000);
  EXPECT_LT(elapsed, 50'000'000);  // well under hardware-counter latency
}

TEST(Rote, ConcurrentIncrementsAreSerialised) {
  RoteCounter counter(FastOptions());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(counter.Increment().ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  auto r = counter.Read();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, static_cast<uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace seal::rote
