#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/net/net.h"
#include "src/net/poller.h"

namespace seal::net {
namespace {

TEST(Net, StreamPairRoundTrip) {
  auto [a, b] = CreateStreamPair();
  a->Write(std::string_view("hello"));
  uint8_t buf[16];
  size_t n = b->Read(buf, sizeof(buf));
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), n), "hello");
}

TEST(Net, BothDirections) {
  auto [a, b] = CreateStreamPair();
  a->Write(std::string_view("ping"));
  b->Write(std::string_view("pong"));
  uint8_t buf[4];
  ASSERT_TRUE(b->ReadFull(buf, 4).ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "ping");
  ASSERT_TRUE(a->ReadFull(buf, 4).ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "pong");
}

TEST(Net, ReadFullAcrossChunks) {
  auto [a, b] = CreateStreamPair();
  std::thread writer([&, &a = a] {
    a->Write(std::string_view("abc"));
    a->Write(std::string_view("defgh"));
  });
  uint8_t buf[8];
  ASSERT_TRUE(b->ReadFull(buf, 8).ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 8), "abcdefgh");
  writer.join();
}

TEST(Net, UnreadPutsBytesBackAheadOfQueuedData) {
  auto [a, b] = CreateStreamPair();
  a->Write(std::string_view("hello world"));
  uint8_t peeked[5];
  ASSERT_TRUE(b->ReadFull(peeked, 5).ok());  // "hello"
  // Push the peeked prefix back: the next reader sees the stream untouched
  // (how ShardedTransport routes on the ClientHello without consuming it).
  b->read_pipe()->Unread(BytesView(peeked, 5));
  uint8_t all[11];
  ASSERT_TRUE(b->ReadFull(all, 11).ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(all), 11), "hello world");
  // Unread bytes jump ahead of chunks still queued in the pipe.
  a->Write(std::string_view("tail"));
  uint8_t t;
  ASSERT_TRUE(b->ReadFull(&t, 1).ok());
  b->read_pipe()->Unread(BytesView(&t, 1));
  uint8_t rest[4];
  ASSERT_TRUE(b->ReadFull(rest, 4).ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(rest), 4), "tail");
}

TEST(Net, EofOnClose) {
  auto [a, b] = CreateStreamPair();
  a->Write(std::string_view("bye"));
  a->Close();
  uint8_t buf[8];
  size_t n = b->Read(buf, sizeof(buf));
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(b->Read(buf, sizeof(buf)), 0u);  // EOF
  EXPECT_FALSE(b->ReadFull(buf, 1).ok());
}

TEST(Net, LatencyDelaysDelivery) {
  constexpr int64_t kLatency = 30 * 1000 * 1000;  // 30 ms
  auto [a, b] = CreateStreamPair(kLatency);
  int64_t start = NowNanos();
  a->Write(std::string_view("x"));
  uint8_t buf[1];
  ASSERT_TRUE(b->ReadFull(buf, 1).ok());
  EXPECT_GE(NowNanos() - start, kLatency);
}

TEST(Net, ListenDialAccept) {
  Network network;
  auto listener = network.Listen("service:443");
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    StreamPtr conn = (*listener)->Accept();
    ASSERT_NE(conn, nullptr);
    uint8_t buf[5];
    ASSERT_TRUE(conn->ReadFull(buf, 5).ok());
    conn->Write(std::string_view("reply"));
  });
  auto client = network.Dial("service:443");
  ASSERT_TRUE(client.ok());
  (*client)->Write(std::string_view("query"));
  uint8_t buf[5];
  ASSERT_TRUE((*client)->ReadFull(buf, 5).ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 5), "reply");
  server.join();
}

TEST(Net, DialUnknownAddressFails) {
  Network network;
  EXPECT_FALSE(network.Dial("nobody:1").ok());
}

TEST(Net, DuplicateListenFails) {
  Network network;
  ASSERT_TRUE(network.Listen("addr").ok());
  EXPECT_FALSE(network.Listen("addr").ok());
}

TEST(Net, UnlistenReleasesAddress) {
  Network network;
  auto listener = network.Listen("addr");
  ASSERT_TRUE(listener.ok());
  network.Unlisten("addr");
  EXPECT_FALSE(network.Dial("addr").ok());
  EXPECT_TRUE(network.Listen("addr").ok());
}

TEST(Net, ShutdownUnblocksAccept) {
  Network network;
  auto listener = network.Listen("addr");
  ASSERT_TRUE(listener.ok());
  std::thread acceptor([&] { EXPECT_EQ((*listener)->Accept(), nullptr); });
  SleepNanos(10 * 1000 * 1000);
  (*listener)->Shutdown();
  acceptor.join();
}

TEST(Net, ManyConnections) {
  Network network;
  auto listener = network.Listen("addr");
  ASSERT_TRUE(listener.ok());
  constexpr int kConns = 20;
  std::thread server([&] {
    for (int i = 0; i < kConns; ++i) {
      StreamPtr conn = (*listener)->Accept();
      ASSERT_NE(conn, nullptr);
      uint8_t buf[1];
      ASSERT_TRUE(conn->ReadFull(buf, 1).ok());
      conn->Write(BytesView(buf, 1));
    }
  });
  std::vector<std::thread> clients;
  for (int i = 0; i < kConns; ++i) {
    clients.emplace_back([&, i] {
      auto conn = network.Dial("addr");
      ASSERT_TRUE(conn.ok());
      uint8_t byte = static_cast<uint8_t>(i);
      (*conn)->Write(BytesView(&byte, 1));
      uint8_t echo;
      ASSERT_TRUE((*conn)->ReadFull(&echo, 1).ok());
      EXPECT_EQ(echo, byte);
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  server.join();
}

// --- non-blocking surface: TryRead / TryWrite / watchers ---

TEST(NetNonBlocking, TryReadWouldBlockThenDelivers) {
  auto [a, b] = CreateStreamPair();
  uint8_t buf[8];
  EXPECT_EQ(b->TryRead(buf, sizeof(buf)), Pipe::kWouldBlock);
  a->Write(std::string_view("hi"));
  EXPECT_EQ(b->TryRead(buf, sizeof(buf)), 2);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 2), "hi");
  EXPECT_EQ(b->TryRead(buf, sizeof(buf)), Pipe::kWouldBlock);
  a->Close();
  EXPECT_EQ(b->TryRead(buf, sizeof(buf)), 0);  // EOF
}

TEST(NetNonBlocking, TryReadHonoursLatency) {
  constexpr int64_t kLatency = 20 * 1000 * 1000;  // 20 ms
  auto [a, b] = CreateStreamPair(kLatency);
  a->Write(std::string_view("x"));
  uint8_t buf[1];
  // In flight: not readable yet, but CheckReadReady reports the deadline.
  EXPECT_EQ(b->TryRead(buf, 1), Pipe::kWouldBlock);
  Pipe::ReadReadiness r = b->read_pipe()->CheckReadReady();
  EXPECT_FALSE(r.ready);
  EXPECT_GT(r.next_ready_at, 0);
  while (b->TryRead(buf, 1) == Pipe::kWouldBlock) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(buf[0], 'x');
}

TEST(NetNonBlocking, TryWriteBackpressureAndDrain) {
  auto [a, b] = CreateStreamPair();
  a->write_pipe()->set_capacity(4);
  uint8_t data[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(a->TryWrite(BytesView(data, 8)), 4);  // partial accept
  EXPECT_EQ(a->TryWrite(BytesView(data + 4, 4)), Pipe::kWouldBlock);
  EXPECT_FALSE(a->write_pipe()->CheckWriteReady());
  uint8_t buf[2];
  ASSERT_TRUE(b->ReadFull(buf, 2).ok());  // drain opens the window
  EXPECT_TRUE(a->write_pipe()->CheckWriteReady());
  EXPECT_EQ(a->TryWrite(BytesView(data + 4, 4)), 2);
}

TEST(NetNonBlocking, AbortUnblocksParkedReader) {
  auto [a, b] = CreateStreamPair();
  std::atomic<bool> got_eof{false};
  std::thread reader([&, &b = b] {
    uint8_t buf[1];
    got_eof.store(b->Read(buf, 1) == 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got_eof.load());
  b->Abort();  // closes BOTH directions, including our own read side
  reader.join();
  EXPECT_TRUE(got_eof.load());
  uint8_t buf[1];
  EXPECT_EQ(a->Read(buf, 1), 0u);  // the peer sees EOF too
}

TEST(NetNonBlocking, WatcherFiresOnWriteAndClose) {
  auto [a, b] = CreateStreamPair();
  std::atomic<int> fires{0};
  uint64_t id = b->read_pipe()->AddWatcher([&] { fires.fetch_add(1); });
  a->Write(std::string_view("x"));
  EXPECT_GE(fires.load(), 1);
  int before_close = fires.load();
  a->Close();
  EXPECT_GT(fires.load(), before_close);
  b->read_pipe()->RemoveWatcher(id);
  int after_remove = fires.load();
  a->Write(std::string_view("y"));  // unwatched: no further callbacks
  EXPECT_EQ(fires.load(), after_remove);
}

// --- Poller ---

// Waits for `flag` with a deadline so a missed wakeup fails the test
// instead of hanging the suite.
bool AwaitFlag(std::atomic<bool>& flag, int64_t timeout_ms = 2000) {
  int64_t deadline = NowNanos() + timeout_ms * 1000 * 1000;
  while (!flag.load(std::memory_order_acquire)) {
    if (NowNanos() > deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

TEST(PollerTest, FiresWhenDataArrives) {
  Poller poller;
  auto [a, b] = CreateStreamPair();
  std::atomic<bool> ready{false};
  uint64_t id = poller.Watch(b->read_pipe(), Poller::Interest::kRead,
                             [&] { ready.store(true, std::memory_order_release); });
  EXPECT_FALSE(ready.load());
  a->Write(std::string_view("x"));
  EXPECT_TRUE(AwaitFlag(ready));
  poller.Unwatch(id);
}

TEST(PollerTest, AlreadyReadyFiresImmediately) {
  Poller poller;
  auto [a, b] = CreateStreamPair();
  a->Write(std::string_view("x"));
  std::atomic<bool> ready{false};
  uint64_t id = poller.Watch(b->read_pipe(), Poller::Interest::kRead,
                             [&] { ready.store(true, std::memory_order_release); });
  EXPECT_TRUE(AwaitFlag(ready));
  poller.Unwatch(id);
}

TEST(PollerTest, OneShotUntilRearm) {
  Poller poller;
  auto [a, b] = CreateStreamPair();
  std::atomic<int> fires{0};
  uint64_t id =
      poller.Watch(b->read_pipe(), Poller::Interest::kRead, [&] { fires.fetch_add(1); });
  a->Write(std::string_view("x"));
  // First event fires exactly once even though more writes arrive...
  while (fires.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  a->Write(std::string_view("y"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(fires.load(), 1);
  // ...until rearmed (data still buffered: level-triggered, fires again).
  poller.Rearm(id);
  while (fires.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  poller.Unwatch(id);
}

TEST(PollerTest, CloseWhileWatchedFiresEofReadiness) {
  Poller poller;
  auto [a, b] = CreateStreamPair();
  std::atomic<bool> ready{false};
  uint64_t id = poller.Watch(b->read_pipe(), Poller::Interest::kRead,
                             [&] { ready.store(true, std::memory_order_release); });
  a->Close();  // no data ever written: EOF alone must count as readable
  EXPECT_TRUE(AwaitFlag(ready));
  uint8_t buf[1];
  EXPECT_EQ(b->TryRead(buf, 1), 0);
  poller.Unwatch(id);
}

TEST(PollerTest, WriteBackpressureFiresWhenDrained) {
  Poller poller;
  auto [a, b] = CreateStreamPair();
  a->write_pipe()->set_capacity(2);
  uint8_t data[2] = {1, 2};
  ASSERT_EQ(a->TryWrite(BytesView(data, 2)), 2);
  ASSERT_EQ(a->TryWrite(BytesView(data, 2)), Pipe::kWouldBlock);
  std::atomic<bool> writable{false};
  uint64_t id = poller.Watch(a->write_pipe(), Poller::Interest::kWrite,
                             [&] { writable.store(true, std::memory_order_release); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writable.load());  // still full
  uint8_t buf[2];
  ASSERT_TRUE(b->ReadFull(buf, 2).ok());  // reader drains -> window opens
  EXPECT_TRUE(AwaitFlag(writable));
  poller.Unwatch(id);
}

TEST(PollerTest, LatencyDataFiresAtDeadlineWithoutBusyPoll) {
  constexpr int64_t kLatency = 25 * 1000 * 1000;  // 25 ms
  Poller poller;
  auto [a, b] = CreateStreamPair(kLatency);
  std::atomic<bool> ready{false};
  int64_t start = NowNanos();
  uint64_t id = poller.Watch(b->read_pipe(), Poller::Interest::kRead,
                             [&] { ready.store(true, std::memory_order_release); });
  a->Write(std::string_view("x"));
  EXPECT_TRUE(AwaitFlag(ready));
  EXPECT_GE(NowNanos() - start, kLatency);  // not before the data is due
  uint8_t buf[1];
  EXPECT_EQ(b->TryRead(buf, 1), 1);
  poller.Unwatch(id);
}

TEST(PollerTest, UnwatchGuaranteesNoFurtherCallbacks) {
  Poller poller;
  auto [a, b] = CreateStreamPair();
  std::atomic<int> fires{0};
  uint64_t id =
      poller.Watch(b->read_pipe(), Poller::Interest::kRead, [&] { fires.fetch_add(1); });
  a->Write(std::string_view("x"));
  while (fires.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  poller.Unwatch(id);
  int frozen = fires.load();
  poller.Rearm(id);  // stale id: must be a no-op
  a->Write(std::string_view("y"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(fires.load(), frozen);
  EXPECT_EQ(poller.watch_count(), 0u);
}

TEST(PollerTest, ManyWatchesConcurrentTraffic) {
  Poller poller;
  constexpr int kStreams = 64;
  std::vector<std::pair<StreamPtr, StreamPtr>> pairs;
  std::vector<std::unique_ptr<std::atomic<int>>> counts;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kStreams; ++i) {
    pairs.push_back(CreateStreamPair());
    counts.push_back(std::make_unique<std::atomic<int>>(0));
    std::atomic<int>* count = counts.back().get();
    ids.push_back(poller.Watch(pairs.back().second->read_pipe(), Poller::Interest::kRead,
                               [count] { count->fetch_add(1); }));
  }
  std::thread writer([&] {
    for (int i = 0; i < kStreams; ++i) {
      pairs[static_cast<size_t>(i)].first->Write(std::string_view("x"));
    }
  });
  writer.join();
  for (int i = 0; i < kStreams; ++i) {
    int64_t deadline = NowNanos() + 2000 * 1000 * 1000LL;
    while (counts[static_cast<size_t>(i)]->load() == 0 && NowNanos() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    EXPECT_EQ(counts[static_cast<size_t>(i)]->load(), 1) << "stream " << i;
  }
  for (uint64_t id : ids) {
    poller.Unwatch(id);
  }
}

// --- Dial vs Unlisten race (regression) ---

// Pre-fix, Listener::Push after Shutdown silently dropped the server end,
// so a Dial that raced Shutdown returned a stream whose reads block until
// the orphaned server end happened to be destroyed. Now the dial fails.
TEST(NetShutdown, DialAfterListenerShutdownIsRefused) {
  Network network;
  auto listener = network.Listen("svc");
  ASSERT_TRUE(listener.ok());
  // Shut the listener down directly WITHOUT Unlisten: the address is still
  // registered, which is exactly the race window (Unlisten removes the map
  // entry after Shutdown; a Dial can interleave).
  (*listener)->Shutdown();
  auto conn = network.Dial("svc");
  EXPECT_FALSE(conn.ok());
}

TEST(NetShutdown, ShutdownAbortsQueuedConnections) {
  Network network;
  auto listener = network.Listen("svc");
  ASSERT_TRUE(listener.ok());
  auto conn = network.Dial("svc");
  ASSERT_TRUE(conn.ok());  // queued on the listener, never accepted
  (*listener)->Shutdown();
  uint8_t buf[1];
  EXPECT_EQ((*conn)->Read(buf, 1), 0u);  // EOF, not a hang
}

}  // namespace
}  // namespace seal::net
