#include <gtest/gtest.h>

#include <thread>

#include "src/common/clock.h"
#include "src/net/net.h"

namespace seal::net {
namespace {

TEST(Net, StreamPairRoundTrip) {
  auto [a, b] = CreateStreamPair();
  a->Write(std::string_view("hello"));
  uint8_t buf[16];
  size_t n = b->Read(buf, sizeof(buf));
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), n), "hello");
}

TEST(Net, BothDirections) {
  auto [a, b] = CreateStreamPair();
  a->Write(std::string_view("ping"));
  b->Write(std::string_view("pong"));
  uint8_t buf[4];
  ASSERT_TRUE(b->ReadFull(buf, 4).ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "ping");
  ASSERT_TRUE(a->ReadFull(buf, 4).ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "pong");
}

TEST(Net, ReadFullAcrossChunks) {
  auto [a, b] = CreateStreamPair();
  std::thread writer([&, &a = a] {
    a->Write(std::string_view("abc"));
    a->Write(std::string_view("defgh"));
  });
  uint8_t buf[8];
  ASSERT_TRUE(b->ReadFull(buf, 8).ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 8), "abcdefgh");
  writer.join();
}

TEST(Net, EofOnClose) {
  auto [a, b] = CreateStreamPair();
  a->Write(std::string_view("bye"));
  a->Close();
  uint8_t buf[8];
  size_t n = b->Read(buf, sizeof(buf));
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(b->Read(buf, sizeof(buf)), 0u);  // EOF
  EXPECT_FALSE(b->ReadFull(buf, 1).ok());
}

TEST(Net, LatencyDelaysDelivery) {
  constexpr int64_t kLatency = 30 * 1000 * 1000;  // 30 ms
  auto [a, b] = CreateStreamPair(kLatency);
  int64_t start = NowNanos();
  a->Write(std::string_view("x"));
  uint8_t buf[1];
  ASSERT_TRUE(b->ReadFull(buf, 1).ok());
  EXPECT_GE(NowNanos() - start, kLatency);
}

TEST(Net, ListenDialAccept) {
  Network network;
  auto listener = network.Listen("service:443");
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    StreamPtr conn = (*listener)->Accept();
    ASSERT_NE(conn, nullptr);
    uint8_t buf[5];
    ASSERT_TRUE(conn->ReadFull(buf, 5).ok());
    conn->Write(std::string_view("reply"));
  });
  auto client = network.Dial("service:443");
  ASSERT_TRUE(client.ok());
  (*client)->Write(std::string_view("query"));
  uint8_t buf[5];
  ASSERT_TRUE((*client)->ReadFull(buf, 5).ok());
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 5), "reply");
  server.join();
}

TEST(Net, DialUnknownAddressFails) {
  Network network;
  EXPECT_FALSE(network.Dial("nobody:1").ok());
}

TEST(Net, DuplicateListenFails) {
  Network network;
  ASSERT_TRUE(network.Listen("addr").ok());
  EXPECT_FALSE(network.Listen("addr").ok());
}

TEST(Net, UnlistenReleasesAddress) {
  Network network;
  auto listener = network.Listen("addr");
  ASSERT_TRUE(listener.ok());
  network.Unlisten("addr");
  EXPECT_FALSE(network.Dial("addr").ok());
  EXPECT_TRUE(network.Listen("addr").ok());
}

TEST(Net, ShutdownUnblocksAccept) {
  Network network;
  auto listener = network.Listen("addr");
  ASSERT_TRUE(listener.ok());
  std::thread acceptor([&] { EXPECT_EQ((*listener)->Accept(), nullptr); });
  SleepNanos(10 * 1000 * 1000);
  (*listener)->Shutdown();
  acceptor.join();
}

TEST(Net, ManyConnections) {
  Network network;
  auto listener = network.Listen("addr");
  ASSERT_TRUE(listener.ok());
  constexpr int kConns = 20;
  std::thread server([&] {
    for (int i = 0; i < kConns; ++i) {
      StreamPtr conn = (*listener)->Accept();
      ASSERT_NE(conn, nullptr);
      uint8_t buf[1];
      ASSERT_TRUE(conn->ReadFull(buf, 1).ok());
      conn->Write(BytesView(buf, 1));
    }
  });
  std::vector<std::thread> clients;
  for (int i = 0; i < kConns; ++i) {
    clients.emplace_back([&, i] {
      auto conn = network.Dial("addr");
      ASSERT_TRUE(conn.ok());
      uint8_t byte = static_cast<uint8_t>(i);
      (*conn)->Write(BytesView(&byte, 1));
      uint8_t echo;
      ASSERT_TRUE((*conn)->ReadFull(&echo, 1).ok());
      EXPECT_EQ(echo, byte);
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  server.join();
}

}  // namespace
}  // namespace seal::net
