// Multi-enclave sharding (ROADMAP item 2): route-key -> shard mapping,
// session-affine connection routing across TLS resumption, epoch-anchored
// head records, and the cross-shard consistent-cut invariant check agreeing
// with both the offline log_merge path and a single-instance replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/libseal.h"
#include "src/core/log_merge.h"
#include "src/core/log_segment.h"
#include "src/core/shard.h"
#include "src/services/git_service.h"
#include "src/services/http_server.h"
#include "src/services/https_client.h"
#include "src/services/sharded_transport.h"
#include "src/ssm/git_ssm.h"
#include "src/tls/x509.h"

namespace seal {
namespace {

struct Pki {
  Pki() {
    ca = tls::MakeSelfSignedCa("Shard CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("shard-ca")));
    server_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("shard-srv"));
    server_cert = tls::IssueCertificate(ca, "libseal.service", server_key.public_key(), 2);
  }
  tls::CertifiedKey ca;
  crypto::EcdsaPrivateKey server_key;
  tls::Certificate server_cert;
};

Pki& GetPki() {
  static Pki pki;
  return pki;
}

core::LibSealOptions MakeLibSealOptions() {
  core::LibSealOptions options;
  options.enclave.inject_costs = false;
  options.use_async_calls = false;  // shard tests drive loggers directly
  options.audit_log.counter_options.inject_latency = false;
  options.logger.check_interval = 0;
  options.tls.certificate = GetPki().server_cert;
  options.tls.private_key = GetPki().server_key;
  return options;
}

core::ShardSetOptions MakeShardSetOptions(size_t shards, const std::string& disk_base = "") {
  core::ShardSetOptions options;
  options.shards = shards;
  options.libseal = MakeLibSealOptions();
  if (!disk_base.empty()) {
    options.libseal.audit_log.mode = core::PersistenceMode::kDisk;
    options.libseal.audit_log.path = disk_base;
  }
  options.epoch_counter.inject_latency = false;
  return options;
}

// Scrubs the per-shard log files and the epoch record (gtest's TempDir
// persists across runs).
std::string FreshShardBase(const std::string& name, size_t shards) {
  std::string base = std::string(::testing::TempDir()) + "/" + name;
  for (size_t k = 0; k < shards; ++k) {
    core::RemoveLogFiles(base + ".shard" + std::to_string(k));
  }
  std::remove((base + ".epoch").c_str());
  return base;
}

std::function<std::unique_ptr<core::ServiceModule>()> GitFactory() {
  return [] { return std::make_unique<ssm::GitModule>(); };
}

size_t ViolationRows(const core::CheckReport& report) {
  size_t rows = 0;
  for (const auto& violation : report.violations) {
    rows += violation.rows.rows.size();
  }
  return rows;
}

tls::TlsConfig ClientTls() {
  tls::TlsConfig config;
  config.trusted_roots = {GetPki().ca.cert};
  return config;
}

// --- route-key mapping ---

TEST(ShardFor, StableAndInRange) {
  for (uint64_t key = 0; key < 1000; ++key) {
    uint32_t shard = core::ShardSet::ShardFor(key, 4);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, core::ShardSet::ShardFor(key, 4));  // same key, same shard
  }
  EXPECT_EQ(core::ShardSet::ShardFor(42, 1), 0u);
  EXPECT_EQ(core::ShardSet::ShardFor(42, 0), 0u);  // degenerate count
}

TEST(ShardFor, SequentialKeysSpreadAcrossShards) {
  // Connection ids are sequential; the splitmix finalizer must still
  // balance them (a plain modulo would too, but also correlates with any
  // striding in the id assignment).
  constexpr size_t kShards = 4;
  size_t counts[kShards] = {0};
  for (uint64_t key = 0; key < 1000; ++key) {
    counts[core::ShardSet::ShardFor(key, kShards)]++;
  }
  for (size_t k = 0; k < kShards; ++k) {
    EXPECT_GT(counts[k], 150u) << "shard " << k << " starved";
  }
}

// --- ClientHello peeking ---

Bytes SyntheticClientHello(size_t sid_len) {
  Bytes hello;
  hello.push_back(22);  // handshake record
  hello.push_back(3);
  hello.push_back(3);
  AppendBe16(hello, static_cast<uint16_t>(4 + 32 + 1 + sid_len));
  hello.push_back(1);  // ClientHello
  hello.push_back(0);
  hello.push_back(0);
  hello.push_back(static_cast<uint8_t>(32 + 1 + sid_len));
  for (int i = 0; i < 32; ++i) {
    hello.push_back(static_cast<uint8_t>(i));  // client random
  }
  hello.push_back(static_cast<uint8_t>(sid_len));
  for (size_t i = 0; i < sid_len; ++i) {
    hello.push_back(static_cast<uint8_t>(0xa0 + i));
  }
  return hello;
}

TEST(ParseClientHello, ExtractsOfferedSessionId) {
  Bytes hello = SyntheticClientHello(16);
  auto sid = services::ParseClientHelloSessionId(hello);
  ASSERT_TRUE(sid.has_value());
  ASSERT_EQ(sid->size(), 16u);
  EXPECT_EQ((*sid)[0], 0xa0);
  EXPECT_EQ((*sid)[15], 0xaf);
}

TEST(ParseClientHello, FreshClientOffersEmptyId) {
  auto sid = services::ParseClientHelloSessionId(SyntheticClientHello(0));
  ASSERT_TRUE(sid.has_value());
  EXPECT_TRUE(sid->empty());
}

TEST(ParseClientHello, RejectsNonHelloAndTruncatedPrefixes) {
  Bytes hello = SyntheticClientHello(16);
  // Truncated before the sid length byte.
  EXPECT_FALSE(services::ParseClientHelloSessionId(BytesView(hello).subspan(0, 20)).has_value());
  // Truncated mid-sid.
  EXPECT_FALSE(services::ParseClientHelloSessionId(BytesView(hello).subspan(0, hello.size() - 4))
                   .has_value());
  // Not a handshake record.
  Bytes appdata = hello;
  appdata[0] = 23;
  EXPECT_FALSE(services::ParseClientHelloSessionId(appdata).has_value());
  // Handshake record but not a ClientHello.
  Bytes finished = hello;
  finished[5] = 20;
  EXPECT_FALSE(services::ParseClientHelloSessionId(finished).has_value());
  // Over-long sid length.
  Bytes oversized = hello;
  oversized[41] = 33;
  EXPECT_FALSE(services::ParseClientHelloSessionId(oversized).has_value());
}

TEST(ShardRouterTest, LearnsAndOverwrites) {
  services::ShardRouter router;
  Bytes sid(16, 0x11);
  EXPECT_FALSE(router.Lookup(sid).has_value());
  router.Learn(sid, 2);
  ASSERT_TRUE(router.Lookup(sid).has_value());
  EXPECT_EQ(*router.Lookup(sid), 2u);
  router.Learn(sid, 3);  // renegotiated elsewhere: latest wins
  EXPECT_EQ(*router.Lookup(sid), 3u);
  EXPECT_EQ(router.size(), 1u);
  router.Learn({}, 1);  // empty ids are never mapped
  EXPECT_EQ(router.size(), 1u);
}

// --- epoch records ---

TEST(EpochRecordTest, SerializeRoundTrips) {
  core::EpochRecord rec;
  rec.epoch = 7;
  rec.wall_nanos = 123456789;
  rec.heads.push_back({0, Bytes(32, 0xab), 4, 9});
  rec.heads.push_back({1, Bytes(32, 0xcd), 5, 11});
  auto back = core::EpochRecord::Deserialize(rec.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->epoch, 7u);
  EXPECT_EQ(back->wall_nanos, 123456789);
  ASSERT_EQ(back->heads.size(), 2u);
  EXPECT_EQ(back->heads[0].chain_head, rec.heads[0].chain_head);
  EXPECT_EQ(back->heads[1].counter_value, 5u);
  EXPECT_EQ(back->heads[1].entry_count, 11u);
}

TEST(EpochRecordTest, RejectsTruncationAndGarbage) {
  core::EpochRecord rec;
  rec.epoch = 1;
  rec.heads.push_back({0, Bytes(32, 0x01), 1, 1});
  Bytes ser = rec.Serialize();
  ser.pop_back();
  EXPECT_FALSE(core::EpochRecord::Deserialize(ser).ok());
  EXPECT_FALSE(core::EpochRecord::Deserialize(ToBytes("not an epoch record")).ok());
  Bytes trailing = rec.Serialize();
  trailing.push_back(0);
  EXPECT_FALSE(core::EpochRecord::Deserialize(trailing).ok());
}

TEST(ShardSetTest, EpochAnchorPersistsAndDetectsTamper) {
  const std::string base = FreshShardBase("shard_epoch_rec.log", 2);
  core::ShardSet set(MakeShardSetOptions(2, base), GitFactory());
  ASSERT_TRUE(set.Init().ok());
  EXPECT_GE(set.last_anchored_epoch(), 1u);  // Init anchors the initial state

  services::GitBackend backend;
  for (uint64_t key = 0; key < 8; ++key) {
    http::HttpRequest req = services::MakeGitPush("repo", {{"main", "c" + std::to_string(key)}});
    http::HttpResponse rsp = backend.Handle(req);
    ASSERT_TRUE(set.OnPair(key, req.Serialize(), rsp.Serialize(), false).ok());
  }
  auto rec = set.AnchorEpoch();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_GT(rec->epoch, 1u);
  ASSERT_EQ(rec->heads.size(), 2u);
  for (const core::ShardHeadInfo& head : rec->heads) {
    EXPECT_EQ(head.entry_count, set.logger(head.shard)->log().entry_count());
    EXPECT_EQ(head.chain_head, set.logger(head.shard)->log().chain_head());
  }

  auto read = core::ShardSet::ReadEpochRecord(set.epoch_path(), set.anchor_public_key());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->epoch, rec->epoch);
  ASSERT_EQ(read->heads.size(), 2u);
  EXPECT_EQ(read->heads[0].chain_head, rec->heads[0].chain_head);
  EXPECT_EQ(read->heads[1].chain_head, rec->heads[1].chain_head);

  // A flipped payload byte breaks the anchor signature.
  auto data = core::ReadFileBytes(set.epoch_path());
  ASSERT_TRUE(data.ok());
  (*data)[10] ^= 0x01;
  ASSERT_TRUE(
      core::DurableWriteFile(set.epoch_path(), *data, /*append=*/false, /*sync=*/false).ok());
  auto tampered = core::ShardSet::ReadEpochRecord(set.epoch_path(), set.anchor_public_key());
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kPermissionDenied);
  set.Shutdown();
}

// --- cross-shard checking ---

// The core equivalence the sharded deployment must preserve: an attack
// whose evidence is split across shards (pushes on shard A, the rolled-back
// advertisement on shard B) is invisible to every per-shard check, but the
// cross-shard consistent cut, the offline log_merge of the durable shard
// logs, and a single-instance replay of the same trace all agree on the
// violations.
TEST(ShardSetTest, CrossShardCheckMatchesOfflineMergeAndSingleInstance) {
  const std::string base = FreshShardBase("shard_equiv.log", 2);
  core::ShardSet set(MakeShardSetOptions(2, base), GitFactory());
  ASSERT_TRUE(set.Init().ok());

  uint64_t push_key = 0;
  uint64_t fetch_key = 0;
  while (core::ShardSet::ShardFor(push_key, 2) != 0) {
    ++push_key;
  }
  while (core::ShardSet::ShardFor(fetch_key, 2) != 1) {
    ++fetch_key;
  }

  services::GitBackend backend;
  std::vector<std::pair<std::string, std::string>> trace;
  auto pump = [&](uint64_t key, const http::HttpRequest& req) {
    http::HttpResponse rsp = backend.Handle(req);
    trace.emplace_back(req.Serialize(), rsp.Serialize());
    auto r = set.OnPair(key, trace.back().first, trace.back().second, false);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  };
  pump(push_key, services::MakeGitPush("repo", {{"main", "c1"}}));
  pump(push_key, services::MakeGitPush("repo", {{"main", "c2"}}));
  backend.set_attack(services::GitBackend::Attack::kRollback);
  pump(fetch_key, services::MakeGitFetch("repo"));

  EXPECT_EQ(set.logger(0)->pairs_logged(), 2);
  EXPECT_EQ(set.logger(1)->pairs_logged(), 1);

  // The shard holding only the advertisement cannot fire the soundness
  // invariant locally.
  auto local = set.logger(1)->CheckInvariants();
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(local->clean()) << local->Summary();

  auto cross = set.CheckCrossShard();
  ASSERT_TRUE(cross.ok()) << cross.status().ToString();
  EXPECT_EQ(cross->shards, 2u);
  EXPECT_EQ(cross->merged_entries, 3u);
  const size_t cross_rows = ViolationRows(cross->report);
  EXPECT_GT(cross_rows, 0u);

  // Offline auditor path: merge the durable per-shard logs.
  std::vector<core::PartialLog> partials;
  for (size_t k = 0; k < set.shard_count(); ++k) {
    core::PartialLog partial;
    partial.path = base + ".shard" + std::to_string(k);
    partial.log_public_key = set.shard(k).log_public_key();
    partial.counter = &set.logger(k)->log().counter();
    partials.push_back(std::move(partial));
  }
  ssm::GitModule module;
  auto merged = core::MergeVerifiedLogs(partials, module);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->total_entries, 3u);
  size_t offline_rows = 0;
  for (const core::Invariant& invariant : module.Invariants()) {
    auto r = merged->database.Execute(invariant.query);
    ASSERT_TRUE(r.ok()) << invariant.name << ": " << r.status().ToString();
    offline_rows += r->rows.size();
  }
  EXPECT_EQ(offline_rows, cross_rows);

  // And a single un-sharded instance replaying the identical trace.
  core::LibSealRuntime single(MakeLibSealOptions(), std::make_unique<ssm::GitModule>());
  ASSERT_TRUE(single.Init().ok());
  for (const auto& [req, rsp] : trace) {
    ASSERT_TRUE(single.logger()->OnPair(1, req, rsp, false).ok());
  }
  auto replay = single.logger()->CheckInvariants();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(ViolationRows(*replay), cross_rows);
  single.Shutdown();
  set.Shutdown();
}

TEST(ShardSetTest, CleanTrafficStaysCleanAcrossShards) {
  core::ShardSet set(MakeShardSetOptions(4), GitFactory());
  ASSERT_TRUE(set.Init().ok());
  services::GitBackend backend;
  for (uint64_t key = 0; key < 20; ++key) {
    http::HttpRequest req = services::MakeGitPush("repo", {{"main", "c" + std::to_string(key)}});
    http::HttpResponse rsp = backend.Handle(req);
    ASSERT_TRUE(set.OnPair(key, req.Serialize(), rsp.Serialize(), false).ok());
  }
  http::HttpRequest fetch = services::MakeGitFetch("repo");
  http::HttpResponse rsp = backend.Handle(fetch);
  ASSERT_TRUE(set.OnPair(99, fetch.Serialize(), rsp.Serialize(), false).ok());
  auto cross = set.CheckCrossShard();
  ASSERT_TRUE(cross.ok()) << cross.status().ToString();
  EXPECT_EQ(cross->merged_entries, 21u);
  EXPECT_TRUE(cross->report.clean()) << cross->report.Summary();
  // Appends actually spread: no shard holds the whole log.
  for (size_t k = 0; k < set.shard_count(); ++k) {
    EXPECT_LT(set.logger(k)->log().entry_count(), 21u) << "shard " << k << " took everything";
  }
  set.Shutdown();
}

// --- connection routing ---

TEST(ShardedTransportTest, ResumedSessionLandsOnSameShard) {
  net::Network network;
  core::ShardSetOptions options = MakeShardSetOptions(4);
  options.libseal.use_async_calls = true;
  options.libseal.async.enclave_threads = 2;
  options.libseal.async.tasks_per_thread = 16;
  core::ShardSet set(options, GitFactory());
  ASSERT_TRUE(set.Init().ok());
  services::ShardedTransport transport(&set);
  services::GitBackend backend;
  services::HttpServer server(&network, {.address = "git:443"}, &transport,
                              [&](const http::HttpRequest& r) { return backend.Handle(r); });
  ASSERT_TRUE(server.Start().ok());

  tls::TlsConfig client_tls = ClientTls();
  services::ClientSessionStore sessions;
  Bytes sid;
  uint32_t first_shard = 0;
  {
    auto client = services::HttpsClient::Connect(&network, "git:443", client_tls, 0, 0, &sessions);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    EXPECT_FALSE((*client)->tls().resumed());
    auto rsp = (*client)->RoundTrip(services::MakeGitPush("repo", {{"main", "c1"}}));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
    sid = (*client)->tls().session_id();
    ASSERT_FALSE(sid.empty());
    auto learned = transport.router().Lookup(sid);
    ASSERT_TRUE(learned.has_value()) << "handshake did not teach the router";
    first_shard = *learned;
    EXPECT_EQ(set.logger(first_shard)->pairs_logged(), 1);
    (*client)->Close();
  }
  // Reconnect offering the session: only the original shard's
  // enclave-resident cache holds the master secret, so an abbreviated
  // handshake proves the router sent the connection back there.
  {
    auto client = services::HttpsClient::Connect(&network, "git:443", client_tls, 0, 0, &sessions);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    EXPECT_TRUE((*client)->tls().resumed());
    EXPECT_EQ((*client)->tls().session_id(), sid);
    auto rsp = (*client)->RoundTrip(services::MakeGitPush("repo", {{"main", "c2"}}));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
    (*client)->Close();
  }
  EXPECT_EQ(transport.RouteFor(sid), first_shard);
  EXPECT_EQ(set.logger(first_shard)->pairs_logged(), 2);
  for (size_t k = 0; k < set.shard_count(); ++k) {
    if (k != first_shard) {
      EXPECT_EQ(set.logger(k)->pairs_logged(), 0) << "pair leaked to shard " << k;
    }
  }
  server.Stop();
  set.Shutdown();
}

TEST(ShardedTransportTest, FreshClientsSpreadRoundRobin) {
  net::Network network;
  core::ShardSetOptions options = MakeShardSetOptions(4);
  options.libseal.use_async_calls = true;
  options.libseal.async.enclave_threads = 2;
  options.libseal.async.tasks_per_thread = 16;
  core::ShardSet set(options, GitFactory());
  ASSERT_TRUE(set.Init().ok());
  services::ShardedTransport transport(&set);
  services::GitBackend backend;
  services::HttpServer server(&network, {.address = "git:443"}, &transport,
                              [&](const http::HttpRequest& r) { return backend.Handle(r); });
  ASSERT_TRUE(server.Start().ok());

  tls::TlsConfig client_tls = ClientTls();
  // Four sequential fresh clients (no session store, nothing to resume):
  // round-robin puts one on each shard.
  for (int c = 0; c < 4; ++c) {
    auto client = services::HttpsClient::Connect(&network, "git:443", client_tls);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto rsp = (*client)->RoundTrip(
        services::MakeGitPush("repo", {{"main", "c" + std::to_string(c)}}));
    ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
    (*client)->Close();
  }
  for (size_t k = 0; k < set.shard_count(); ++k) {
    EXPECT_EQ(set.logger(k)->pairs_logged(), 1) << "shard " << k;
  }
  server.Stop();
  set.Shutdown();
}

}  // namespace
}  // namespace seal
