#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/logger.h"
#include "src/services/git_service.h"
#include "src/ssm/git_ssm.h"

namespace seal::core {
namespace {

std::unique_ptr<AuditLogger> MakeLogger(LoggerOptions logger_options,
                                        PersistenceMode mode = PersistenceMode::kMemory,
                                        const std::string& path = "") {
  AuditLogOptions log_options;
  log_options.mode = mode;
  log_options.path = path;
  log_options.counter_options.inject_latency = false;
  auto logger = std::make_unique<AuditLogger>(std::make_unique<ssm::GitModule>(), log_options,
                                              logger_options,
                                              crypto::EcdsaPrivateKey::FromSeed(ToBytes("lt")));
  EXPECT_TRUE(logger->Init().ok());
  return logger;
}

Result<std::optional<CheckReport>> PumpPush(AuditLogger& logger, services::GitBackend& backend,
                                            int commit, bool force = false) {
  auto req = services::MakeGitPush("r", {{"main", "c" + std::to_string(commit)}});
  auto rsp = backend.Handle(req);
  return logger.OnPair(req.Serialize(), rsp.Serialize(), force);
}

TEST(Logger, LogicalTimeAdvancesPerPair) {
  auto logger = MakeLogger({.check_interval = 0});
  services::GitBackend backend;
  ASSERT_TRUE(PumpPush(*logger, backend, 1).ok());
  ASSERT_TRUE(PumpPush(*logger, backend, 2).ok());
  auto rows = logger->log().Query("SELECT time FROM updates ORDER BY time");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows->rows[1][0].AsInt(), 2);
  EXPECT_EQ(logger->pairs_logged(), 2);
}

TEST(Logger, NoCheckWhenIntervalDisabled) {
  auto logger = MakeLogger({.check_interval = 0});
  services::GitBackend backend;
  for (int i = 1; i <= 50; ++i) {
    auto r = PumpPush(*logger, backend, i);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->has_value());
  }
}

TEST(Logger, IntervalTriggersCheckAndTrim) {
  // Sync mode: interval reports come back from the OnPair that tripped them.
  auto logger = MakeLogger({.check_interval = 10, .async_checking = false});
  services::GitBackend backend;
  int checks = 0;
  for (int i = 1; i <= 30; ++i) {
    auto r = PumpPush(*logger, backend, i);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) {
      ++checks;
      EXPECT_GT((*r)->invariants_checked, 0u);
      EXPECT_GE((*r)->check_nanos, 0);
    }
  }
  EXPECT_EQ(checks, 3);
  // Trimming ran: only the latest update per branch survives.
  EXPECT_EQ(logger->log().database().TableSize("updates"), 1u);
}

TEST(Logger, ForcedCheckRunsImmediately) {
  auto logger = MakeLogger({.check_interval = 0});
  services::GitBackend backend;
  auto r = PumpPush(*logger, backend, 1, /*force=*/true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_TRUE((*r)->clean());
}

TEST(Logger, ForcedChecksAreRateLimited) {
  LoggerOptions options;
  options.check_interval = 0;
  options.forced_check_min_gap = 5;  // at most one forced check per 5 pairs
  auto logger = MakeLogger(options);
  services::GitBackend backend;
  int granted = 0;
  for (int i = 1; i <= 10; ++i) {
    auto r = PumpPush(*logger, backend, i, /*force=*/true);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) {
      ++granted;
    }
  }
  // Pair 1 and pair 6: two grants in 10 back-to-back demands.
  EXPECT_EQ(granted, 2);
}

TEST(Logger, TuplelessPairsDoNotAdvanceInterval) {
  auto logger = MakeLogger({.check_interval = 3, .async_checking = false});
  services::GitBackend backend;
  ASSERT_TRUE(PumpPush(*logger, backend, 1).ok());
  ASSERT_TRUE(PumpPush(*logger, backend, 2).ok());
  // A burst of unparseable traffic logs nothing, so it must not push the
  // interval over the edge (regression: the counter used to tick per pair,
  // not per contributing pair).
  for (int i = 0; i < 5; ++i) {
    auto r = logger->OnPair("junk", "junk", false);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->has_value());
  }
  // The third contributing pair is what triggers the check.
  auto r = PumpPush(*logger, backend, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
}

TEST(Logger, ForcedCheckOnIntervalBoundaryKeepsBudget) {
  LoggerOptions options;
  options.check_interval = 3;
  options.forced_check_min_gap = 100;  // one forced check per 100 pairs
  auto logger = MakeLogger(options);
  services::GitBackend backend;
  ASSERT_TRUE(PumpPush(*logger, backend, 1).ok());
  ASSERT_TRUE(PumpPush(*logger, backend, 2).ok());
  // A demand landing exactly on the interval boundary is satisfied by the
  // interval check and must not spend the forced budget...
  auto r = PumpPush(*logger, backend, 3, /*force=*/true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  // ...so a demand on the very next pair is still granted.
  r = PumpPush(*logger, backend, 4, /*force=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
  // And now the budget IS spent: an immediate third demand is denied.
  r = PumpPush(*logger, backend, 5, /*force=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

TEST(Logger, LastReportRetained) {
  auto logger = MakeLogger({.check_interval = 0});
  services::GitBackend backend;
  EXPECT_FALSE(logger->last_report().has_value());
  ASSERT_TRUE(PumpPush(*logger, backend, 1, true).ok());
  ASSERT_TRUE(logger->last_report().has_value());
  EXPECT_TRUE(logger->last_report()->clean());
}

TEST(Logger, ReportSummaryFormats) {
  CheckReport clean;
  clean.invariants_checked = 2;
  EXPECT_EQ(clean.Summary(), "ok 2 invariants");
  CheckReport dirty;
  dirty.invariants_checked = 2;
  CheckReport::Violation v;
  v.invariant = "git-soundness";
  v.rows.rows.push_back({});
  dirty.violations.push_back(std::move(v));
  EXPECT_EQ(dirty.Summary(), "VIOLATION git-soundness(1)");
}

TEST(Logger, UnparseableTrafficIsIgnoredNotFatal) {
  auto logger = MakeLogger({.check_interval = 0});
  auto r = logger->OnPair("not http at all", "also not http", false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(logger->log().entry_count(), 0u);
  EXPECT_EQ(logger->pairs_logged(), 1);  // the pair still advances time
}

TEST(Logger, DiskModeCommitsPerPair) {
  std::string path = std::string(::testing::TempDir()) + "/logger_disk.log";
  auto logger = MakeLogger({.check_interval = 0}, PersistenceMode::kDisk, path);
  services::GitBackend backend;
  ASSERT_TRUE(PumpPush(*logger, backend, 1).ok());
  uint64_t counter_after_one = logger->log().counter().Read().value();
  ASSERT_TRUE(PumpPush(*logger, backend, 2).ok());
  uint64_t counter_after_two = logger->log().counter().Read().value();
  EXPECT_GT(counter_after_two, counter_after_one);  // one ROTE round per pair
  EXPECT_GT(logger->log().persisted_bytes(), 0u);
}

TEST(Logger, MemModeSkipsCounterRounds) {
  auto logger = MakeLogger({.check_interval = 0});
  services::GitBackend backend;
  ASSERT_TRUE(PumpPush(*logger, backend, 1).ok());
  EXPECT_EQ(logger->log().counter().Read().value(), 0u);
}

TEST(Logger, ConcurrentAppendsVerifyChainAndConnectionOrder) {
  // Multiple connections race the sequencer on the encrypted disk path.
  // Afterwards the persisted chain must verify, every record must be
  // present, and each connection's pairs must appear in submission order.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  std::string path = std::string(::testing::TempDir()) + "/logger_concurrent.log";
  AuditLogOptions log_options;
  log_options.mode = PersistenceMode::kDisk;
  log_options.path = path;
  log_options.encryption_key = FromHex("000102030405060708090a0b0c0d0e0f");
  log_options.counter_options.inject_latency = false;
  crypto::EcdsaPrivateKey key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("concurrent"));
  AuditLogger logger(std::make_unique<ssm::GitModule>(), log_options, {.check_interval = 0},
                     key);
  ASSERT_TRUE(logger.Init().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      services::GitBackend backend;
      std::string branch = "t" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        auto req = services::MakeGitPush("r", {{branch, branch + "-c" + std::to_string(i)}});
        auto rsp = backend.Handle(req);
        auto r = logger.OnPair(static_cast<uint64_t>(t), req.Serialize(), rsp.Serialize(),
                               false);
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(logger.pairs_logged(), kThreads * kPerThread);

  // No record lost, and the signed head covers all of them.
  auto verified = AuditLog::VerifyLogFile(path, key.public_key(), logger.log().counter(),
                                          log_options.encryption_key);
  ASSERT_TRUE(verified.ok()) << verified.status().message();
  EXPECT_EQ(*verified, static_cast<size_t>(kThreads) * kPerThread);

  // Within a connection, logical time must respect submission order.
  for (int t = 0; t < kThreads; ++t) {
    std::string branch = "t" + std::to_string(t);
    auto rows =
        logger.log().Query("SELECT cid FROM updates WHERE branch = '" + branch +
                           "' ORDER BY time");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->rows.size(), static_cast<size_t>(kPerThread)) << branch;
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(rows->rows[static_cast<size_t>(i)][0].AsText(),
                branch + "-c" + std::to_string(i));
    }
  }
}

TEST(Logger, ConcurrentAppendsWithChecksStress) {
  // Interval and forced checks firing from the drain step while appenders
  // race: every pair must succeed and the final full check stays clean.
  constexpr int kThreads = 6;
  constexpr int kPerThread = 50;
  auto logger = MakeLogger({.check_interval = 5, .forced_check_min_gap = 10});
  std::atomic<int> failures{0};
  std::atomic<int> reports{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      services::GitBackend backend;
      std::string branch = "s" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        auto req = services::MakeGitPush("r", {{branch, "c" + std::to_string(i)}});
        auto rsp = backend.Handle(req);
        auto r = logger->OnPair(static_cast<uint64_t>(t), req.Serialize(), rsp.Serialize(),
                                i % 17 == 0);
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (r->has_value()) {
          reports.fetch_add(1);
          if (!(*r)->clean()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reports.load(), 0);
  EXPECT_EQ(logger->pairs_logged(), kThreads * kPerThread);
  auto final_check = logger->CheckInvariants();
  ASSERT_TRUE(final_check.ok());
  EXPECT_TRUE(final_check->clean());
}

TEST(Logger, RestartRecoversLogAndResumesTickets) {
  const std::string path = std::string(::testing::TempDir()) + "/logger_recovery.log";
  RemoveLogFiles(path);
  AuditLogOptions log_options;
  log_options.mode = PersistenceMode::kDisk;
  log_options.path = path;
  log_options.segment_bytes = 512;
  log_options.recover = true;
  log_options.counter_options.inject_latency = false;
  const LoggerOptions logger_options{.check_interval = 0};
  const auto key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("lt"));

  {
    auto logger = std::make_unique<AuditLogger>(std::make_unique<ssm::GitModule>(), log_options,
                                                logger_options, key);
    ASSERT_TRUE(logger->Init().ok());
    EXPECT_FALSE(logger->recovery_info().had_state);
    services::GitBackend backend;
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE(PumpPush(*logger, backend, i).ok());
    }
  }

  // A new logger over the same path replays the persisted log and issues
  // its first ticket past the recovered maximum.
  auto logger = std::make_unique<AuditLogger>(std::make_unique<ssm::GitModule>(), log_options,
                                              logger_options, key);
  ASSERT_TRUE(logger->Init().ok());
  EXPECT_TRUE(logger->recovery_info().had_state);
  EXPECT_EQ(logger->recovery_info().max_ticket, 5);
  EXPECT_EQ(logger->log().entry_count(), 5u);
  services::GitBackend backend;
  ASSERT_TRUE(PumpPush(*logger, backend, 6).ok());
  auto rows = logger->log().Query("SELECT MAX(time) FROM updates");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 6);
  auto check = logger->CheckInvariants();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->clean());
  RemoveLogFiles(path);
}

}  // namespace
}  // namespace seal::core
