// Scale-out auditing (paper §3.2): a load balancer spreads one client's
// traffic across two LibSEAL instances, so neither partial audit log can
// check the invariants alone -- the pushes are in one log and the
// (rolled-back) advertisement in the other. Merging the verified partial
// logs reveals the violation.
//
// Build: cmake --build build && ./build/examples/multi_instance_merge
#include <cstdio>
#include <memory>

#include "src/core/log_merge.h"
#include "src/core/logger.h"
#include "src/services/git_service.h"
#include "src/ssm/git_ssm.h"

using namespace seal;

namespace {

struct Instance {
  Instance(const char* name)
      : key(crypto::EcdsaPrivateKey::FromSeed(ToBytes(std::string("inst-") + name))),
        path(std::string("/tmp/libseal_example_") + name + ".log") {
    core::AuditLogOptions log_options;
    log_options.mode = core::PersistenceMode::kDisk;
    log_options.path = path;
    log_options.counter_options.inject_latency = false;
    core::LoggerOptions logger_options;
    logger_options.check_interval = 0;
    logger = std::make_unique<core::AuditLogger>(std::make_unique<ssm::GitModule>(),
                                                 log_options, logger_options, key);
    (void)logger->Init();
  }

  void Observe(services::GitBackend& backend, const http::HttpRequest& request) {
    http::HttpResponse response = backend.Handle(request);
    (void)logger->OnPair(request.Serialize(), response.Serialize(), false);
  }

  core::PartialLog Partial() const {
    core::PartialLog partial;
    partial.path = path;
    partial.log_public_key = key.public_key();
    partial.counter = &logger->log().counter();
    return partial;
  }

  crypto::EcdsaPrivateKey key;
  std::string path;
  std::unique_ptr<core::AuditLogger> logger;
};

size_t Violations(db::Database& db) {
  ssm::GitModule module;
  size_t total = 0;
  for (const core::Invariant& invariant : module.Invariants()) {
    auto r = db.Execute(invariant.query);
    if (r.ok()) {
      total += r->rows.size();
    }
  }
  return total;
}

}  // namespace

int main() {
  std::printf("== Scale-out: merging partial audit logs from two instances ==\n\n");

  services::GitBackend backend;  // the shared service state
  Instance a("lb_a");
  Instance b("lb_b");

  // The load balancer sends the pushes to instance A...
  a.Observe(backend, services::MakeGitPush("repo", {{"main", "c1"}}));
  a.Observe(backend, services::MakeGitPush("repo", {{"main", "c2"}}));
  std::printf("instance A observed 2 pushes (main -> c1, c2)\n");

  // ...then the service rolls back, and the fetch lands on instance B.
  backend.set_attack(services::GitBackend::Attack::kRollback);
  b.Observe(backend, services::MakeGitFetch("repo"));
  std::printf("instance B observed 1 fetch (server advertised the OLD commit)\n\n");

  // Each partial log alone is blind.
  auto local_a = a.logger->CheckInvariants();
  auto local_b = b.logger->CheckInvariants();
  std::printf("instance A alone: %s\n",
              local_a.ok() && local_a->clean() ? "clean (no advertisements to check)" : "?!");
  std::printf("instance B alone: %s\n",
              local_b.ok() && local_b->clean() ? "clean (no updates to compare against)" : "?!");

  // The merged, verified view is not.
  ssm::GitModule module;
  auto merged = core::MergeVerifiedLogs({a.Partial(), b.Partial()}, module);
  if (!merged.ok()) {
    std::printf("merge failed: %s\n", merged.status().ToString().c_str());
    return 1;
  }
  std::printf("\nmerged %zu entries from %zu instances (both logs verified)\n",
              merged->total_entries, merged->instances);
  std::printf("merged view: %zu violation(s) -- the rollback is exposed\n",
              Violations(merged->database));
  return 0;
}
