// Git attack demo: walks through the three Git metadata attacks from
// Torres-Arias et al. (teleport, rollback, reference deletion) that Git's
// own hash chain does NOT prevent, and shows LibSEAL detecting each one
// while legitimate operations (including branch deletion) stay clean.
//
// Build: cmake --build build && ./build/examples/git_attack_demo
#include <cstdio>
#include <memory>

#include "src/core/logger.h"
#include "src/services/git_service.h"
#include "src/ssm/git_ssm.h"

using namespace seal;

namespace {

std::unique_ptr<core::AuditLogger> MakeLogger() {
  core::AuditLogOptions log_options;
  log_options.counter_options.inject_latency = false;
  core::LoggerOptions logger_options;
  logger_options.check_interval = 0;
  auto logger = std::make_unique<core::AuditLogger>(
      std::make_unique<ssm::GitModule>(), log_options, logger_options,
      crypto::EcdsaPrivateKey::FromSeed(ToBytes("demo")));
  (void)logger->Init();
  return logger;
}

void Pump(services::GitBackend& backend, core::AuditLogger& logger,
          const http::HttpRequest& request) {
  http::HttpResponse response = backend.Handle(request);
  (void)logger.OnPair(request.Serialize(), response.Serialize(), false);
}

void Report(core::AuditLogger& logger, const char* scenario) {
  auto report = logger.CheckInvariants();
  if (!report.ok()) {
    std::printf("%-38s CHECK ERROR: %s\n", scenario, report.status().ToString().c_str());
    return;
  }
  if (report->clean()) {
    std::printf("%-38s clean (%zu invariants hold)\n", scenario, report->invariants_checked);
  } else {
    std::printf("%-38s *** %s\n", scenario, report->Summary().c_str());
  }
}

}  // namespace

int main() {
  std::printf("== Git metadata attacks vs LibSEAL invariants ==\n\n");

  {
    // Baseline: honest history with a legitimate branch deletion.
    services::GitBackend backend;
    auto logger = MakeLogger();
    Pump(backend, *logger, services::MakeGitPush("repo", {{"main", "c1"}, {"dev", "d1"}}));
    Pump(backend, *logger, services::MakeGitPush("repo", {{"main", "c2"}}));
    Pump(backend, *logger, services::MakeGitPush("repo", {}, {"dev"}));  // delete dev
    Pump(backend, *logger, services::MakeGitFetch("repo"));
    Report(*logger, "honest history + legit deletion:");
  }
  {
    // Rollback: the server advertises an OLD commit for main. Clients that
    // never saw c2 cannot tell -- but the audit log can.
    services::GitBackend backend;
    auto logger = MakeLogger();
    Pump(backend, *logger, services::MakeGitPush("repo", {{"main", "c1"}}));
    Pump(backend, *logger, services::MakeGitPush("repo", {{"main", "c2"}}));
    backend.set_attack(services::GitBackend::Attack::kRollback);
    Pump(backend, *logger, services::MakeGitFetch("repo"));
    Report(*logger, "rollback attack:");
  }
  {
    // Teleport: a branch pointer is moved to a commit from ANOTHER branch
    // (e.g. pointing a release branch at unreviewed code).
    services::GitBackend backend;
    auto logger = MakeLogger();
    Pump(backend, *logger, services::MakeGitPush("repo", {{"main", "c1"}}));
    Pump(backend, *logger, services::MakeGitPush("repo", {{"evil", "e1"}}));
    backend.set_attack(services::GitBackend::Attack::kTeleport);
    Pump(backend, *logger, services::MakeGitFetch("repo"));
    Report(*logger, "teleport attack:");
  }
  {
    // Reference deletion: a whole branch silently vanishes from the
    // advertisement although nobody deleted it.
    services::GitBackend backend;
    auto logger = MakeLogger();
    Pump(backend, *logger, services::MakeGitPush("repo", {{"main", "c1"}, {"feature", "f1"}}));
    backend.set_attack(services::GitBackend::Attack::kRefDeletion);
    Pump(backend, *logger, services::MakeGitFetch("repo"));
    Report(*logger, "reference deletion attack:");
  }

  std::printf("\nGit's commit hash chain protects file contents; these attacks forge the\n"
              "branch/tag METADATA, which only the LibSEAL audit log can prove wrong.\n");
  return 0;
}
