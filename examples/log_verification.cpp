// Dispute resolution demo: the persisted audit log as non-repudiable
// evidence. Shows (1) an honest log verifying, (2) a provider edit being
// caught by the hash chain + signature, and (3) a rollback to an older --
// validly signed! -- log being caught by the ROTE monotonic counter.
//
// Build: cmake --build build && ./build/examples/log_verification
#include <cstdio>
#include <string>

#include "src/core/audit_log.h"

using namespace seal;

namespace {

void CopyFile(const std::string& from, const std::string& to) {
  std::FILE* in = std::fopen(from.c_str(), "rb");
  std::FILE* out = std::fopen(to.c_str(), "wb");
  if (in == nullptr || out == nullptr) {
    return;
  }
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    std::fputc(c, out);
  }
  std::fclose(in);
  std::fclose(out);
}

void ShowVerdict(const char* scenario, const Result<size_t>& verdict) {
  if (verdict.ok()) {
    std::printf("%-42s VERIFIED (%zu entries)\n", scenario, *verdict);
  } else {
    std::printf("%-42s REJECTED: %s\n", scenario, verdict.status().message().c_str());
  }
}

}  // namespace

int main() {
  std::printf("== Audit-log verification & dispute resolution ==\n\n");
  const std::string path = "/tmp/libseal_example_audit.log";

  // The enclave's log key. In deployment its public half is published via
  // remote attestation; here we just hold both sides.
  crypto::EcdsaPrivateKey enclave_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("enclave"));

  core::AuditLogOptions options;
  options.mode = core::PersistenceMode::kDisk;
  options.path = path;
  options.counter_options.inject_latency = false;
  core::AuditLog log(options, enclave_key);
  (void)log.ExecuteSchema({"CREATE TABLE updates(time, repo, branch, cid, type)"});

  auto append = [&](int64_t t, const std::string& cid) {
    (void)log.Append("updates", {db::Value(t), db::Value(std::string("repo")),
                                 db::Value(std::string("main")), db::Value(cid),
                                 db::Value(std::string("update"))});
    (void)log.CommitHead();
  };
  append(1, "commit-1");
  append(2, "commit-2");

  // Scenario 1: honest log.
  ShowVerdict("honest log:", core::AuditLog::VerifyLogFile(path, enclave_key.public_key(),
                                                           log.counter()));

  // Keep a (validly signed) snapshot for the rollback scenario.
  CopyFile(path, path + ".old");
  CopyFile(path + ".sig", path + ".old.sig");

  append(3, "commit-3");

  // Scenario 2: the provider edits an entry in place.
  CopyFile(path, path + ".bak");
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  std::fseek(f, 60, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 60, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);
  ShowVerdict("provider-edited log:",
              core::AuditLog::VerifyLogFile(path, enclave_key.public_key(), log.counter()));
  CopyFile(path + ".bak", path);  // restore

  // Scenario 3: the provider swaps in the OLD log + OLD signature. Every
  // byte of it is authentic -- but the distributed counter has moved on.
  CopyFile(path + ".old", path);
  CopyFile(path + ".old.sig", path + ".sig");
  ShowVerdict("rolled-back (but validly signed) log:",
              core::AuditLog::VerifyLogFile(path, enclave_key.public_key(), log.counter()));

  std::printf("\na provider can neither FORGE log entries (signature), MODIFY them (hash\n"
              "chain) nor PRESENT OLD STATE (monotonic counter): what the log says, the\n"
              "service did.\n");
  return 0;
}
