// Dropbox-through-proxy demo (the paper's §6.4 deployment): the origin
// service is unreachable for instrumentation, so a local Squid-like proxy
// linked against LibSEAL terminates the clients' TLS, audits the metadata
// protocol, and detects the origin lying about stored files.
//
// Build: cmake --build build && ./build/examples/dropbox_proxy_audit
#include <cstdio>
#include <memory>

#include "src/core/libseal.h"
#include "src/services/dropbox_service.h"
#include "src/services/http_server.h"
#include "src/services/https_client.h"
#include "src/services/proxy.h"
#include "src/ssm/dropbox_ssm.h"
#include "src/tls/x509.h"

using namespace seal;

int main() {
  std::printf("== Dropbox auditing through a LibSEAL proxy ==\n\n");

  tls::CertifiedKey ca =
      tls::MakeSelfSignedCa("Demo CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
  crypto::EcdsaPrivateKey key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("svc"));
  tls::Certificate cert = tls::IssueCertificate(ca, "proxy.local", key.public_key(), 2);

  net::Network network;

  // The remote "Dropbox" with its own (unaudited) TLS endpoint.
  tls::TlsConfig origin_tls;
  origin_tls.certificate = cert;
  origin_tls.private_key = key;
  services::PlainTransport origin_transport(origin_tls);
  services::DropboxService dropbox;
  services::HttpServer origin(&network, {.address = "dropbox.com:443"}, &origin_transport,
                              [&](const http::HttpRequest& r) { return dropbox.Handle(r); });
  if (!origin.Start().ok()) {
    return 1;
  }

  // The local proxy: LibSEAL with the Dropbox SSM terminates client TLS.
  core::LibSealOptions options;
  options.enclave.inject_costs = false;
  options.audit_log.counter_options.inject_latency = false;
  options.logger.check_interval = 0;
  options.tls.certificate = cert;
  options.tls.private_key = key;
  core::LibSealRuntime runtime(options, std::make_unique<ssm::DropboxModule>());
  if (!runtime.Init().ok()) {
    return 1;
  }
  services::LibSealTransport proxy_transport(&runtime);
  services::ProxyServer::Options proxy_options;
  proxy_options.listen_address = "proxy.local:3128";
  proxy_options.upstream_address = "dropbox.com:443";
  proxy_options.upstream_latency_nanos = 5'000'000;  // a small WAN delay
  proxy_options.upstream_tls.verify_peer = false;    // as in the paper's setup
  services::ProxyServer proxy(&network, proxy_options, &proxy_transport);
  if (!proxy.Start().ok()) {
    return 1;
  }
  std::printf("origin at dropbox.com:443, auditing proxy at proxy.local:3128\n\n");

  tls::TlsConfig client_tls;
  client_tls.trusted_roots = {ca.cert};
  auto client = services::HttpsClient::Connect(&network, "proxy.local:3128", client_tls);
  if (!client.ok()) {
    return 1;
  }

  // Upload two files, then poll the file list with an audited request.
  (void)(*client)->RoundTrip(services::MakeCommitBatch(
      "alice", "laptop", {{"thesis.tex", "blocklist-aaaa", 4 << 20}}));
  (void)(*client)->RoundTrip(services::MakeCommitBatch(
      "alice", "laptop", {{"data.bin", "blocklist-bbbb", 8 << 20}}));
  auto clean = (*client)->RoundTrip(services::MakeListRequest("alice", /*libseal_check=*/true));
  if (clean.ok()) {
    const std::string* result = clean->GetHeader("Libseal-Check-Result");
    std::printf("honest origin, audited list  -> %s\n", result ? result->c_str() : "(none)");
  }

  // The origin corrupts the stored blocklist metadata.
  dropbox.set_attack(services::DropboxService::Attack::kCorruptBlocklist);
  auto corrupted = (*client)->RoundTrip(services::MakeListRequest("alice", true));
  if (corrupted.ok()) {
    const std::string* result = corrupted->GetHeader("Libseal-Check-Result");
    std::printf("corrupted blocklist, audited -> %s\n", result ? result->c_str() : "(none)");
  }

  // The origin silently drops a file from the listing.
  dropbox.set_attack(services::DropboxService::Attack::kOmitFile);
  auto omitted = (*client)->RoundTrip(services::MakeListRequest("alice", true));
  if (omitted.ok()) {
    const std::string* result = omitted->GetHeader("Libseal-Check-Result");
    std::printf("omitted file, audited        -> %s\n", result ? result->c_str() : "(none)");
  }

  (*client)->Close();
  proxy.Stop();
  origin.Stop();
  runtime.Shutdown();
  std::printf("\nthe client holds non-repudiable proof either way: the blocklists it\n"
              "uploaded are in the enclave-signed audit log.\n");
  return 0;
}
