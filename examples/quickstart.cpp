// Quickstart: put LibSEAL in front of a tiny HTTPS service and watch it
// build a tamper-evident audit log.
//
//   1. create a PKI and a LibSEAL runtime with the Git service module;
//   2. serve a Git-like backend over TLS terminated INSIDE the enclave;
//   3. run a few requests, including a client-triggered invariant check;
//   4. inject a rollback attack and see the in-band violation report;
//   5. dump audit-log statistics.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "src/core/libseal.h"
#include "src/services/git_service.h"
#include "src/services/http_server.h"
#include "src/services/https_client.h"
#include "src/ssm/git_ssm.h"
#include "src/tls/x509.h"

using namespace seal;

int main() {
  std::printf("== LibSEAL quickstart ==\n\n");

  // --- 1. PKI: a CA plus the service certificate the enclave will hold.
  tls::CertifiedKey ca =
      tls::MakeSelfSignedCa("Quickstart CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("ca")));
  crypto::EcdsaPrivateKey service_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("svc"));
  tls::Certificate service_cert =
      tls::IssueCertificate(ca, "git.example", service_key.public_key(), 2);

  // --- 2. LibSEAL runtime: TLS + SQL audit log inside a simulated enclave.
  core::LibSealOptions options;
  options.enclave.inject_costs = false;  // quickstart favours speed
  options.audit_log.counter_options.inject_latency = false;
  options.logger.check_interval = 0;  // checks on client demand only
  options.tls.certificate = service_cert;
  options.tls.private_key = service_key;
  core::LibSealRuntime runtime(options, std::make_unique<ssm::GitModule>());
  if (!runtime.Init().ok()) {
    std::printf("runtime init failed\n");
    return 1;
  }

  // --- 3. An HTTPS Git service, linked against LibSEAL instead of OpenSSL.
  net::Network network;
  services::LibSealTransport transport(&runtime);
  services::GitBackend backend;
  services::HttpServer server(&network, {.address = "git.example:443"}, &transport,
                              [&](const http::HttpRequest& r) { return backend.Handle(r); });
  if (!server.Start().ok()) {
    std::printf("server start failed\n");
    return 1;
  }
  std::printf("service up at git.example:443 (TLS terminated inside the enclave)\n");

  tls::TlsConfig client_tls;
  client_tls.trusted_roots = {ca.cert};
  auto client = services::HttpsClient::Connect(&network, "git.example:443", client_tls);
  if (!client.ok()) {
    std::printf("connect failed: %s\n", client.status().ToString().c_str());
    return 1;
  }
  std::printf("client connected; server certificate: %s\n\n",
              (*client)->tls().peer_certificate()->subject.c_str());

  // --- 4. Normal operation: pushes, then an audited fetch.
  for (int i = 1; i <= 3; ++i) {
    auto rsp = (*client)->RoundTrip(
        services::MakeGitPush("demo", {{"main", "commit-" + std::to_string(i)}}));
    std::printf("push commit-%d -> HTTP %d\n", i, rsp.ok() ? (*rsp).status : -1);
  }
  auto fetch = (*client)->RoundTrip(services::MakeGitFetch("demo", /*libseal_check=*/true));
  if (fetch.ok()) {
    const std::string* result = fetch->GetHeader("Libseal-Check-Result");
    std::printf("fetch with Libseal-Check -> %s\n\n", result ? result->c_str() : "(no header)");
  }

  // --- 5. The provider "loses" a commit: advertise the old one (rollback).
  std::printf("injecting rollback attack at the service...\n");
  backend.set_attack(services::GitBackend::Attack::kRollback);
  auto attacked = (*client)->RoundTrip(services::MakeGitFetch("demo", /*libseal_check=*/true));
  if (attacked.ok()) {
    const std::string* result = attacked->GetHeader("Libseal-Check-Result");
    std::printf("fetch with Libseal-Check -> %s\n\n", result ? result->c_str() : "(no header)");
  }

  // --- 6. Audit log statistics.
  std::printf("audit log: %zu entries over %lld request/response pairs, chain head %s...\n",
              runtime.logger()->log().entry_count(),
              static_cast<long long>(runtime.logger()->pairs_logged()),
              ToHex(runtime.logger()->log().chain_head()).substr(0, 16).c_str());

  (*client)->Close();
  server.Stop();
  runtime.Shutdown();
  std::printf("\ndone.\n");
  return 0;
}
